//! TCP ping responder (§4.2).
//!
//! "TCP ping involves a simple reachability test by using the first two
//! steps of the three-way connection setup handshake." The service
//! answers any SYN with a SYN-ACK; the prober completes its RTT
//! measurement without a connection ever being established. The paper's
//! implementation is ~700 lines of C#; Table 4 reports 1.27 µs / 2.105
//! Mq/s against 21.79 µs / 1.012 Mq/s for the host.
//!
//! The responder verifies the TCP checksum (pseudo-header included)
//! before answering — the verification loop plus SYN-ACK construction is
//! what puts the cycle count in the ~90-cycle band implied by the paper's
//! throughput.

use emu_core::csum::{csum_update_u32, csum_update_word, fold16};
use emu_core::proto::{Ipv4Wrapper, TcpWrapper};
use emu_core::{service_builder, Service};
use emu_types::proto::{ether_type, ip_proto, offset};
use kiwi_ir::dsl::*;

const FRAME_CAP: usize = 256;

/// Builds the TCP ping (SYN → SYN-ACK) service.
pub fn tcp_ping() -> Service {
    let (mut pb, dp) = service_builder("emu_tcp_ping", FRAME_CAP);
    let ip = Ipv4Wrapper::new(dp);
    let tcp = TcpWrapper::new(dp);

    let scratch48 = pb.reg("scratch48", 48);
    let scratch32 = pb.reg("scratch32", 32);
    let scratch16 = pb.reg("scratch16", 16);
    let acc = pb.reg("csum_acc", 32);
    let idx = pb.reg("idx", 16);
    let end = pb.reg("end", 16);
    let ok = pb.reg("ok", 1);
    let client_seq = pb.reg("client_seq", 32);
    // Our ISN: a per-response counter, as minimal hardware responders do.
    let isn = pb.reg("isn", 32);

    // --- TCP checksum verification over header + pseudo-header --------
    let word_at = |off: kiwi_ir::Expr| -> kiwi_ir::Expr {
        concat(dp.byte_dyn(off.clone()), dp.byte_dyn(add(off, lit(1, 16))))
    };
    let mut sum_step = Vec::new();
    let mut sum_expr = var(acc);
    for k in 0..4 {
        sum_expr = add(sum_expr, resize(word_at(add(var(idx), lit(2 * k, 16))), 32));
    }
    sum_step.push(assign(acc, sum_expr));
    sum_step.push(assign(idx, add(var(idx), lit(8, 16))));
    sum_step.push(pause());

    let tcp_len = sub(ip.total_len(), lit(20, 16));
    let verify = vec![
        // Pseudo-header: src+dst addresses, protocol, TCP length.
        assign(
            acc,
            add(
                add(
                    add(
                        resize(slice(ip.src(), 31, 16), 32),
                        resize(slice(ip.src(), 15, 0), 32),
                    ),
                    add(
                        resize(slice(ip.dst(), 31, 16), 32),
                        resize(slice(ip.dst(), 15, 0), 32),
                    ),
                ),
                add(
                    lit(u64::from(ip_proto::TCP), 32),
                    resize(tcp_len.clone(), 32),
                ),
            ),
        ),
        assign(idx, lit(offset::L4 as u64, 16)),
        assign(end, add(lit(14, 16), ip.total_len())),
        while_loop(lt(var(idx), var(end)), sum_step),
        assign(ok, eq(fold16(var(acc)), lit(0xffff, 16))),
    ];

    // --- SYN-ACK construction ----------------------------------------
    let mut reply = Vec::new();
    reply.push(assign(client_seq, tcp.seq()));
    reply.extend(dp.swap_macs(scratch48));
    reply.extend(ip.swap_addrs(scratch32));
    reply.extend(tcp.swap_ports(scratch16));
    // seq := our ISN; ack := client_seq + 1; flags := SYN|ACK.
    // The checksum is updated incrementally per changed 16-bit word:
    // address/port swaps are sum-neutral, so only seq/ack/flags change.
    let old_flags_word = tcp.off_flags_word();
    let new_flags_word = bor(
        band(old_flags_word.clone(), lit(0xff00, 16)),
        lit(0x12, 16), // SYN|ACK
    );
    let new_ack = add(var(client_seq), lit(1, 32));
    let mut csum = tcp.checksum();
    csum = csum_update_u32(csum, tcp.seq(), var(isn));
    csum = csum_update_u32(csum, tcp.ack(), new_ack.clone());
    csum = csum_update_word(csum, old_flags_word.clone(), new_flags_word.clone());
    reply.extend(tcp.set_checksum(csum));
    reply.extend(tcp.set_seq(var(isn)));
    reply.extend(tcp.set_ack(new_ack));
    reply.extend(dp.set16(offset::L4 + 12, new_flags_word));
    reply.push(assign(isn, add(var(isn), lit(64000, 32))));
    reply.push(dp.set_output_port(dp.input_port()));
    reply.extend(dp.transmit(dp.rx_len()));

    let is_syn = band(
        band(
            dp.ethertype_is(ether_type::IPV4),
            ip.protocol_is(ip_proto::TCP),
        ),
        band(
            band(tcp.syn(), lnot(tcp.ack_flag())),
            lnot(ip.has_options()),
        ),
    );

    let mut handle = verify;
    handle.push(if_then(var(ok), reply));
    let mut body = vec![dp.rx_wait(), label("rx")];
    body.push(if_then(is_syn, handle));
    body.extend(dp.done());

    pb.thread("main", vec![forever(body)]);
    Service::new(pb.build().expect("tcp ping program is well-formed"))
}

/// Builds a valid TCP SYN test frame.
pub fn syn_frame(sport: u16, dport: u16, seq: u32) -> emu_types::Frame {
    use emu_types::{checksum, Frame, MacAddr};
    let mut iphdr = vec![
        0x45, 0x00, 0x00, 40, 0xab, 0xcd, 0x40, 0x00, 0x40, 0x06, 0, 0, 192, 168, 0, 1, 192, 168,
        0, 2,
    ];
    let c = checksum::internet_checksum(&iphdr);
    iphdr[10] = (c >> 8) as u8;
    iphdr[11] = c as u8;

    let mut tcphdr = vec![0u8; 20];
    emu_types::bitutil::set16(&mut tcphdr, 0, sport);
    emu_types::bitutil::set16(&mut tcphdr, 2, dport);
    emu_types::bitutil::set32(&mut tcphdr, 4, seq);
    tcphdr[12] = 5 << 4; // data offset 5
    tcphdr[13] = 0x02; // SYN
    emu_types::bitutil::set16(&mut tcphdr, 14, 0xffff); // window
                                                        // Pseudo-header checksum.
    let mut ph = Vec::new();
    ph.extend_from_slice(&iphdr[12..20]);
    ph.push(0);
    ph.push(6);
    ph.extend_from_slice(&20u16.to_be_bytes());
    ph.extend_from_slice(&tcphdr);
    let cc = checksum::internet_checksum(&ph);
    emu_types::bitutil::set16(&mut tcphdr, 16, cc);

    let mut payload = iphdr;
    payload.extend_from_slice(&tcphdr);
    let mut f = Frame::ethernet(
        MacAddr::from_u64(0x02_00_00_00_00_11),
        MacAddr::from_u64(0x02_00_00_00_00_22),
        ether_type::IPV4,
        &payload,
    );
    f.in_port = 2;
    f
}

/// Verifies the TCP checksum of a frame (test helper shared with NAT).
pub fn tcp_checksum_valid(frame_bytes: &[u8]) -> bool {
    use emu_types::{bitutil, checksum};
    let total = bitutil::get16(frame_bytes, 16) as usize;
    let tcp_len = total - 20;
    let mut ph = Vec::new();
    ph.extend_from_slice(&frame_bytes[26..34]);
    ph.push(0);
    ph.push(6);
    ph.extend_from_slice(&(tcp_len as u16).to_be_bytes());
    ph.extend_from_slice(&frame_bytes[34..14 + total]);
    checksum::internet_checksum(&ph) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_core::{assert_targets_agree, Target};
    use emu_types::bitutil;

    #[test]
    fn syn_gets_synack() {
        let svc = tcp_ping();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let syn = syn_frame(40000, 80, 0x1000);
        let out = inst.process(&syn).unwrap();
        assert_eq!(out.tx.len(), 1);
        let b = out.tx[0].frame.bytes();
        // Ports swapped.
        assert_eq!(bitutil::get16(b, 34), 80);
        assert_eq!(bitutil::get16(b, 36), 40000);
        // SYN|ACK set.
        assert_eq!(b[47] & 0x12, 0x12);
        // ack = client seq + 1.
        assert_eq!(bitutil::get32(b, 42), 0x1001);
        // Addresses swapped.
        assert_eq!(&b[26..30], &[192, 168, 0, 2]);
        // TCP checksum of the reply verifies.
        assert!(tcp_checksum_valid(b), "SYN-ACK checksum invalid");
    }

    #[test]
    fn non_syn_ignored() {
        let svc = tcp_ping();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        // Plain ACK.
        let mut f = syn_frame(40000, 80, 1);
        f.bytes_mut()[47] = 0x10;
        // Fix checksum for the flag change so it isn't dropped for THAT.
        let old = bitutil::get16(f.bytes(), 46);
        let newc = emu_types::checksum::update_word(
            bitutil::get16(f.bytes(), 50),
            old,
            (old & 0xff00) | 0x10,
        );
        bitutil::set16(f.bytes_mut(), 50, newc);
        assert!(inst.process(&f).unwrap().tx.is_empty());
        // SYN+ACK (second handshake step) must not be re-answered.
        let mut f2 = syn_frame(40000, 80, 1);
        f2.bytes_mut()[47] = 0x12;
        assert!(inst.process(&f2).unwrap().tx.is_empty());
    }

    #[test]
    fn bad_checksum_dropped() {
        let svc = tcp_ping();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let mut f = syn_frame(1234, 22, 77);
        f.bytes_mut()[38] ^= 0x40; // corrupt seq without checksum fix
        assert!(inst.process(&f).unwrap().tx.is_empty());
    }

    #[test]
    fn isn_advances_between_probes() {
        let svc = tcp_ping();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let a = inst.process(&syn_frame(1, 2, 3)).unwrap();
        let b = inst.process(&syn_frame(1, 2, 3)).unwrap();
        let seq_a = bitutil::get32(a.tx[0].frame.bytes(), 38);
        let seq_b = bitutil::get32(b.tx[0].frame.bytes(), 38);
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn targets_agree() {
        let frames = vec![
            syn_frame(40000, 80, 0x1000),
            syn_frame(40001, 443, 0xdead),
            syn_frame(40002, 22, 0),
        ];
        assert_targets_agree(&tcp_ping(), &frames).unwrap();
    }

    #[test]
    fn cycle_count_band() {
        let svc = tcp_ping();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let out = inst.process(&syn_frame(40000, 80, 1)).unwrap();
        assert!(
            (20..=140).contains(&out.cycles),
            "tcp ping took {} cycles",
            out.cycles
        );
    }
}
