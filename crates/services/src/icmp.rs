//! ICMP echo responder (§4.2).
//!
//! The paper uses this service for two baselines: a qualitative one ("how
//! hard is a simple network server") and a quantitative one ("how much
//! time is saved by avoiding the system bus, CPU, OS, and network
//! stack"). Table 4 reports 1.09 µs average latency and 3.226 M queries/s
//! against 12.28 µs / 1.068 Mq/s for the Linux host.
//!
//! The responder is RFC-1122-shaped: it verifies the ICMP checksum over
//! the full message (a per-8-byte loop — this dominates the cycle count,
//! which is what puts Emu's throughput near the paper's 3.2 Mq/s rather
//! than at some parse-only fantasy number), flips type 8 → 0 with an
//! RFC 1624 incremental checksum update, swaps addresses, and reflects
//! the frame out of its arrival port.

use emu_core::csum::csum_update_word;
use emu_core::proto::{IcmpWrapper, Ipv4Wrapper};
use emu_core::{service_builder, Service};
use emu_types::proto::{ether_type, ip_proto, offset};
use kiwi_ir::dsl::*;

/// Frame capacity: standard ping sizes (up to a 1500-byte MTU echo).
const FRAME_CAP: usize = 1536;

/// Builds the ICMP echo service.
pub fn icmp_echo() -> Service {
    let (mut pb, dp) = service_builder("emu_icmp_echo", FRAME_CAP);
    let ip = Ipv4Wrapper::new(dp);
    let icmp = IcmpWrapper::new(dp);

    let scratch48 = pb.reg("scratch48", 48);
    let scratch32 = pb.reg("scratch32", 32);
    let csum_new = pb.reg("csum_new", 16);
    let acc = pb.reg("csum_acc", 32);
    let idx = pb.reg("idx", 16);
    let end = pb.reg("end", 16);
    let ok = pb.reg("ok", 1);

    // Checksum-verification loop: sum 16-bit words of the ICMP message,
    // four words (8 bytes) per cycle.
    let word_at = |off: kiwi_ir::Expr| -> kiwi_ir::Expr {
        concat(dp.byte_dyn(off.clone()), dp.byte_dyn(add(off, lit(1, 16))))
    };
    let mut sum_step = Vec::new();
    let mut sum_expr = var(acc);
    for k in 0..4 {
        sum_expr = add(sum_expr, resize(word_at(add(var(idx), lit(2 * k, 16))), 32));
    }
    sum_step.push(assign(acc, sum_expr));
    sum_step.push(assign(idx, add(var(idx), lit(8, 16))));
    sum_step.push(pause());

    let verify_loop = vec![
        assign(acc, lit(0, 32)),
        assign(idx, lit(offset::L4 as u64, 16)),
        // ICMP message ends at 14 + total_len; frames are padded with
        // zeroes, which are checksum-neutral, so summing to a padded
        // 8-byte boundary is exact.
        assign(end, add(lit(14, 16), ip.total_len())),
        while_loop(lt(var(idx), var(end)), sum_step),
        // Fold and compare with 0xffff (valid checksum sums to ~0).
        assign(ok, eq(emu_core::csum::fold16(var(acc)), lit(0xffff, 16))),
    ];

    // Reply construction: swap L2/L3 addresses, set type 0, update the
    // checksum incrementally for the type/code word 0x0800 → 0x0000.
    let mut reply = Vec::new();
    reply.extend(dp.swap_macs(scratch48));
    reply.extend(ip.swap_addrs(scratch32));
    reply.push(icmp.set_type(lit(0, 8)));
    // The update reads the checksum field it rewrites: go via a register.
    reply.extend(dp.set16_via(
        csum_new,
        offset::L4 + 2,
        csum_update_word(icmp.checksum(), lit(0x0800, 16), lit(0x0000, 16)),
    ));
    reply.push(dp.set_output_port(dp.input_port()));
    reply.extend(dp.transmit(dp.rx_len()));

    let is_echo_request = band(
        band(
            dp.ethertype_is(ether_type::IPV4),
            ip.protocol_is(ip_proto::ICMP),
        ),
        band(eq(icmp.icmp_type(), lit(8, 8)), lnot(ip.has_options())),
    );

    let mut body = vec![dp.rx_wait(), label("rx")];
    let mut handle = verify_loop;
    handle.push(if_then(var(ok), reply));
    body.push(if_then(is_echo_request, handle));
    body.extend(dp.done());

    pb.thread("main", vec![forever(body)]);
    Service::new(pb.build().expect("icmp echo program is well-formed"))
}

/// Builds a well-formed ICMP echo request test frame with `payload_len`
/// payload bytes (also used by the benches and examples).
pub fn echo_request_frame(payload_len: usize, seq: u16) -> emu_types::Frame {
    use emu_types::{checksum, Frame, MacAddr};
    let total_len = 20 + 8 + payload_len;
    let mut ip = vec![
        0x45,
        0x00,
        (total_len >> 8) as u8,
        total_len as u8,
        0x12,
        0x34,
        0x40,
        0x00,
        0x40,
        0x01,
        0,
        0,
        10,
        0,
        0,
        1,
        10,
        0,
        0,
        2,
    ];
    let c = checksum::internet_checksum(&ip);
    ip[10] = (c >> 8) as u8;
    ip[11] = c as u8;
    let mut icmp = vec![8, 0, 0, 0, 0x56, 0x78, (seq >> 8) as u8, seq as u8];
    icmp.extend((0..payload_len).map(|i| (i % 251) as u8));
    let cc = checksum::internet_checksum(&icmp);
    icmp[2] = (cc >> 8) as u8;
    icmp[3] = cc as u8;
    let mut payload = ip;
    payload.extend_from_slice(&icmp);
    let mut f = Frame::ethernet(
        MacAddr::from_u64(0x02_00_00_00_00_01),
        MacAddr::from_u64(0x02_00_00_00_00_02),
        ether_type::IPV4,
        &payload,
    );
    f.in_port = 0;
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_core::{assert_targets_agree, Target};
    use emu_types::checksum;

    #[test]
    fn replies_to_valid_echo_request() {
        let svc = icmp_echo();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let req = echo_request_frame(56, 1);
        let out = inst.process(&req).unwrap();
        assert_eq!(out.tx.len(), 1, "one reply expected");
        let reply = out.tx[0].frame.bytes();

        // Type flipped, code intact.
        assert_eq!(reply[34], 0);
        assert_eq!(reply[35], 0);
        // Addresses swapped at both layers.
        assert_eq!(&reply[0..6], req.bytes()[6..12].to_vec().as_slice());
        assert_eq!(&reply[26..30], &[10, 0, 0, 2]);
        assert_eq!(&reply[30..34], &[10, 0, 0, 1]);
        // The ICMP checksum of the reply must verify.
        let total_len = emu_types::bitutil::get16(reply, 16) as usize;
        assert!(checksum::verify(&reply[34..14 + total_len]));
        // Payload echoed unmodified.
        assert_eq!(&reply[42..42 + 56], &req.bytes()[42..42 + 56]);
        // Reflected to the arrival port.
        assert_eq!(out.tx[0].ports, 1 << 0);
    }

    #[test]
    fn corrupt_checksum_is_dropped() {
        let svc = icmp_echo();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let mut req = echo_request_frame(56, 2);
        req.bytes_mut()[40] ^= 0xff; // corrupt payload without fixing csum
        let out = inst.process(&req).unwrap();
        assert!(out.tx.is_empty(), "corrupt request must be dropped");
    }

    #[test]
    fn non_icmp_traffic_ignored() {
        let svc = icmp_echo();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        // A UDP frame.
        let mut req = echo_request_frame(56, 3);
        req.bytes_mut()[23] = 17; // protocol = UDP
        let out = inst.process(&req).unwrap();
        assert!(out.tx.is_empty());
        // An echo *reply* (type 0) must not be answered.
        let mut rep = echo_request_frame(56, 4);
        rep.bytes_mut()[34] = 0;
        let out = inst.process(&rep).unwrap();
        assert!(out.tx.is_empty());
    }

    #[test]
    fn options_bearing_packets_dropped() {
        let svc = icmp_echo();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let mut req = echo_request_frame(56, 5);
        req.bytes_mut()[14] = 0x46; // IHL = 6
        let out = inst.process(&req).unwrap();
        assert!(out.tx.is_empty());
    }

    #[test]
    fn targets_agree_on_mixed_traffic() {
        let mut frames = vec![
            echo_request_frame(8, 1),
            echo_request_frame(56, 2),
            echo_request_frame(200, 3),
        ];
        frames[1].bytes_mut()[40] ^= 1; // one corrupt frame
        assert_targets_agree(&icmp_echo(), &frames).unwrap();
    }

    #[test]
    fn cycle_count_in_expected_band() {
        // The verification loop makes a 56-byte ping cost tens of cycles:
        // that is what grounds Table 4's ~3.2 Mq/s (≈ 62 cycle service
        // time at 200 MHz). Accept a band; EXPERIMENTS.md has exact values.
        let svc = icmp_echo();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let out = inst.process(&echo_request_frame(56, 1)).unwrap();
        assert!(
            (20..=120).contains(&out.cycles),
            "icmp echo took {} cycles",
            out.cycles
        );
    }
}
