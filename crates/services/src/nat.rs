//! Network address translation (§4.4).
//!
//! "We provide a network address translation (NAT) service, supporting
//! both UDP and TCP, which was implemented by a second-year undergraduate
//! student... written entirely in C#, without the use of Verilog-based
//! cores, and has less than 1,000 lines." The paper uses NAT as its
//! three-target portability test case (software, Mininet, hardware);
//! the integration tests and the `nat_three_targets` example do the same
//! here. Table 4: 1.32 µs / 2.439 Mq/s vs 2.44 ms / 1.037 Mq/s for the
//! Linux-gateway host path.
//!
//! Port 0 is the external (public) side; all other ports are internal.
//! Outbound flows get a translation allocated from an ephemeral port
//! counter; inbound packets are matched against the reverse table and
//! dropped when no mapping exists. TTL is decremented and both the IPv4
//! header checksum and the L4 checksum are updated incrementally
//! (RFC 1624) — the output frames carry *valid* checksums, which the
//! tests verify with an independent software implementation.
//!
//! # Flow-affinity requirements under sharding
//!
//! NAT is the canonical *stateful* service for the scale-out engine
//! (`emu_core::Engine`): its translation tables are keyed by flow, so
//! partitioning state across shards is correct **iff every frame of a
//! flow reaches the shard that allocated the flow's mapping**. RSS
//! dispatch (`emu_core::RssHash`) guarantees this for outbound traffic —
//! one 5-tuple always hashes to one shard — which `tests/sharding.rs`
//! asserts by checking that repeated frames of each flow keep their
//! allocated external port.
//!
//! Two caveats are inherent to NAT rather than to the engine, and both
//! are solved by deploying with the `emu_core::NatSteering` dispatch
//! policy instead of plain RSS:
//!
//! * **Return traffic** carries the *public* address and the *allocated
//!   external port*, so its 5-tuple differs from the outbound one and
//!   hashes independently — plain RSS strands replies on the wrong
//!   shard, where the reverse lookup misses and the frame is dropped.
//!   `NatSteering` keys inbound frames on the external port instead.
//! * **Ephemeral-port allocation** is per shard: under RSS two shards
//!   can hand out the same external port to different flows.
//!   `NatSteering` partitions the range — shard *k* allocates
//!   `FIRST_EPHEMERAL + k`, stepping by the shard count — restoring
//!   global uniqueness without cross-shard coordination, and making the
//!   port's residue identify the owning shard for inbound steering.
//!
//! The allocation contract the policy programs is three registers this
//! service declares: `next_port` (the allocation cursor), `port_base`
//! (where the cursor restarts after wrap-around), and `port_stride` (the
//! cursor's step). Their defaults — `FIRST_EPHEMERAL`, `FIRST_EPHEMERAL`,
//! 1 — reproduce the unsharded behaviour exactly.

use emu_core::csum::{csum_update_u32, csum_update_word};
use emu_core::ipblock::CamIf;
use emu_core::proto::Ipv4Wrapper;
use emu_core::{service_builder, Service};
use emu_rtl::{CamPair, CamTable, IpEnv, PairedCamModel};
use emu_types::proto::{ether_type, ip_proto, offset};
use emu_types::{Bits, Ipv4};
use kiwi_ir::dsl::*;

/// Translation table capacity (flows) — the paper-sized default; Cpu
/// engines may raise it via `EngineBuilder::table_entries`.
pub const NAT_ENTRIES: usize = 1024;

/// First ephemeral port handed out.
pub const FIRST_EPHEMERAL: u16 = 50000;

/// Upper bound on ports probed per allocation before the service gives
/// up and drops the frame (port-range exhaustion). The ephemeral space
/// above [`FIRST_EPHEMERAL`] is 15536 ports, so one full sweep always
/// fits; the cap exists to bound the cycle cost of a hopeless scan.
pub const PORT_SCAN_CAP: u16 = 16384;

const FRAME_CAP: usize = 1536;

/// Builds the paired forward/reverse translation tables of one NAT
/// shard: fwd `{int_ip, int_port, proto} → ext_port` and rev
/// `{ext_port, proto} → {int_ip, int_port, phys_port}` are two views
/// of the same mapping, so the pair evicts, expires, and touches them
/// atomically (`ttl` is the mapping's idle timeout in frames). The
/// engine's environment and the traffic checkers' shadow models share
/// this constructor so they age identically.
pub fn nat_cam_pair(entries: usize, ttl: Option<u64>) -> CamPair {
    fn fwd_to_rev(key: &Bits, value: &Bits) -> Bits {
        // rev key = {ext_port (the fwd value), proto (fwd key [7:0])}.
        Bits::from_u64((value.to_u64() << 8) | (key.to_u64() & 0xff), 24)
    }
    fn rev_to_fwd(key: &Bits, value: &Bits) -> Bits {
        // fwd key = {int_ip, int_port (rev value [55:8]), proto (rev
        // key [7:0])}; the rev value's low byte is the phys port.
        Bits::from_u64(((value.to_u64() >> 8) << 8) | (key.to_u64() & 0xff), 56)
    }
    CamPair::new(
        CamTable::new(entries, 56, 16).with_ttl(ttl),
        CamTable::new(entries, 24, 56).with_ttl(ttl),
        fwd_to_rev,
        rev_to_fwd,
    )
}

/// Builds the NAT service with the given public address.
pub fn nat(public_ip: Ipv4) -> Service {
    let (mut pb, dp) = service_builder("emu_nat", FRAME_CAP);
    let ip = Ipv4Wrapper::new(dp);
    // Forward table: {int_ip, int_port, proto} → ext_port.
    let fwd = CamIf::declare(&mut pb, "fwd", 56, 16);
    // Reverse table: {ext_port, proto} → {int_ip, int_port, phys_port}.
    let rev = CamIf::declare(&mut pb, "rev", 24, 56);

    // The ephemeral-port allocation contract (see the module docs):
    // `next_port` steps by `port_stride` and restarts at `port_base`,
    // so a dispatch policy can give each shard a disjoint residue class
    // of the range. Defaults reproduce the unsharded counter.
    let next_port = pb.reg_init(
        "next_port",
        16,
        emu_types::Bits::from_u64(u64::from(FIRST_EPHEMERAL), 16),
    );
    let port_base = pb.reg_init(
        "port_base",
        16,
        emu_types::Bits::from_u64(u64::from(FIRST_EPHEMERAL), 16),
    );
    let port_stride = pb.reg_init("port_stride", 16, emu_types::Bits::from_u64(1, 16));
    let alloc_ok = pb.reg("alloc_ok", 1);
    let scan_left = pb.reg("scan_left", 16);
    let alloc_fail = pb.reg("alloc_fail", 32);
    let proto = pb.reg("proto", 8);
    let l4_sport = pb.reg("l4_sport", 16);
    let l4_dport = pb.reg("l4_dport", 16);
    let ext_port = pb.reg("ext_port", 16);
    let hit = pb.reg("hit", 1);
    let mapping = pb.reg("mapping", 56);
    let csum_reg = pb.reg("csum_reg", 16);
    let ip_csum_reg = pb.reg("ip_csum_reg", 16);
    let old_word = pb.reg("old_word", 16);

    let pub_ip = lit(u64::from(public_ip.0), 32);

    // --- shared helpers ------------------------------------------------
    // TTL decrement + incremental IP checksum update for the TTL/proto
    // word at offset 22.
    let ttl_word_off = offset::IPV4_TTL; // 22
    let mut ttl_dec = vec![assign(old_word, dp.get16(ttl_word_off))];
    ttl_dec.push(dp.set8(ttl_word_off, sub(ip.ttl(), lit(1, 8))));
    ttl_dec.extend(dp.set16_via(
        ip_csum_reg,
        offset::IPV4_CSUM,
        csum_update_word(ip.header_checksum(), var(old_word), dp.get16(ttl_word_off)),
    ));

    // L4 checksum field offset depends on the protocol.
    let udp_csum_off = offset::L4 + 6;
    let tcp_csum_off = offset::L4 + 16;

    // Applies an incremental L4-checksum fix for an address change
    // (pseudo-header) and a port change. `csum_reg` threads the value.
    let fix_l4_csum = |ip_old: kiwi_ir::Expr,
                       ip_new: kiwi_ir::Expr,
                       port_old: kiwi_ir::Expr,
                       port_new: kiwi_ir::Expr|
     -> Vec<kiwi_ir::Stmt> {
        let fix_for = |off: usize, skip_zero: bool| -> Vec<kiwi_ir::Stmt> {
            let mut s = vec![assign(csum_reg, dp.get16(off))];
            let upd = vec![
                assign(
                    csum_reg,
                    csum_update_u32(var(csum_reg), ip_old.clone(), ip_new.clone()),
                ),
                assign(
                    csum_reg,
                    csum_update_word(var(csum_reg), port_old.clone(), port_new.clone()),
                ),
            ];
            if skip_zero {
                // UDP checksum 0 means "not computed" — leave it alone.
                s.push(if_then(ne(var(csum_reg), lit(0, 16)), upd));
            } else {
                s.extend(upd);
            }
            s.extend(dp.set16(off, var(csum_reg)));
            s
        };
        vec![if_else(
            eq(var(proto), lit(u64::from(ip_proto::UDP), 8)),
            fix_for(udp_csum_off, true),
            fix_for(tcp_csum_off, false),
        )]
    };

    // --- outbound path (internal → external) ----------------------------
    let fwd_key = concat_all([ip.src(), var(l4_sport), var(proto)]);
    let mut outbound = Vec::new();
    outbound.extend(fwd.lookup(fwd_key.clone()));
    outbound.push(assign(hit, fwd.matched()));
    outbound.push(assign(ext_port, fwd.value()));
    // A fwd hit means the flow already owns its port.
    outbound.push(assign(alloc_ok, var(hit)));
    // Allocate a mapping on first sight of the flow: walk the cursor
    // until it lands on a port with no live reverse mapping. The naive
    // cursor re-issued a live flow's port after one wrap of the range
    // (~15k allocations per shard residue); probing the reverse table
    // both skips live ports and — via the table's TTL — reclaims
    // expired ones before they are reused.
    let mut allocate = vec![assign(scan_left, lit(u64::from(PORT_SCAN_CAP), 16))];
    let mut probe = vec![assign(ext_port, var(next_port))];
    probe.push(assign(
        next_port,
        mux(
            // Wrap before the step would overflow 16 bits: restart at
            // `port_base` (with the default stride of 1 this fires only
            // at 0xffff, matching the unsharded counter).
            gt(var(next_port), sub(lit(0xffff, 16), var(port_stride))),
            var(port_base),
            add(var(next_port), var(port_stride)),
        ),
    ));
    probe.extend(rev.lookup(concat(var(ext_port), var(proto))));
    probe.push(assign(alloc_ok, lnot(rev.matched())));
    probe.push(assign(scan_left, sub(var(scan_left), lit(1, 16))));
    allocate.push(while_loop(
        band(lnot(var(alloc_ok)), ne(var(scan_left), lit(0, 16))),
        probe,
    ));
    let mut commit = fwd.write(fwd_key, var(ext_port));
    commit.extend(rev.write(
        concat(var(ext_port), var(proto)),
        concat_all([ip.src(), var(l4_sport), resize(dp.input_port(), 8)]),
    ));
    allocate.push(if_else(
        var(alloc_ok),
        commit,
        // Every probed port is live: the range is exhausted — count it
        // and drop the frame (no rewrite, no transmit).
        vec![assign(alloc_fail, add(var(alloc_fail), lit(1, 32)))],
    ));
    outbound.push(if_then(lnot(var(hit)), allocate));
    // Rewrite source: csum fixes first (they need the old values).
    let mut rewrite = Vec::new();
    rewrite.extend(fix_l4_csum(
        ip.src(),
        pub_ip.clone(),
        var(l4_sport),
        var(ext_port),
    ));
    rewrite.extend(dp.set16_via(
        ip_csum_reg,
        offset::IPV4_CSUM,
        csum_update_u32(ip.header_checksum(), ip.src(), pub_ip.clone()),
    ));
    rewrite.extend(ip.set_src(pub_ip.clone()));
    rewrite.extend(dp.set16(offset::L4, var(ext_port)));
    rewrite.extend(ttl_dec.clone());
    rewrite.push(dp.set_output_port(lit(0, 8)));
    rewrite.extend(dp.transmit(dp.rx_len()));
    outbound.push(if_then(var(alloc_ok), rewrite));

    // --- inbound path (external → internal) ------------------------------
    let mut inbound = Vec::new();
    inbound.extend(rev.lookup(concat(var(l4_dport), var(proto))));
    inbound.push(assign(hit, rev.matched()));
    inbound.push(assign(mapping, rev.value()));
    let int_ip = slice(var(mapping), 55, 24);
    let int_port = slice(var(mapping), 23, 8);
    let phys_port = slice(var(mapping), 7, 0);
    let mut translate = Vec::new();
    translate.extend(fix_l4_csum(
        ip.dst(),
        int_ip.clone(),
        var(l4_dport),
        int_port.clone(),
    ));
    translate.extend(dp.set16_via(
        ip_csum_reg,
        offset::IPV4_CSUM,
        csum_update_u32(ip.header_checksum(), ip.dst(), int_ip.clone()),
    ));
    translate.extend(ip.set_dst(int_ip));
    translate.extend(dp.set16(offset::L4 + 2, int_port));
    translate.extend(ttl_dec.clone());
    translate.push(dp.set_output_port(resize(phys_port, 8)));
    translate.extend(dp.transmit(dp.rx_len()));
    // No mapping: implicit drop.
    inbound.push(if_then(var(hit), translate));

    // --- main loop ----------------------------------------------------------
    let translatable = band(
        band(dp.ethertype_is(ether_type::IPV4), lnot(ip.has_options())),
        bor(ip.protocol_is(ip_proto::TCP), ip.protocol_is(ip_proto::UDP)),
    );
    let mut handle = vec![
        assign(proto, ip.protocol()),
        assign(l4_sport, dp.get16(offset::L4)),
        assign(l4_dport, dp.get16(offset::L4 + 2)),
        if_else(eq(dp.input_port(), lit(0, 8)), inbound, outbound),
    ];
    let mut body = vec![dp.rx_wait(), label("rx")];
    body.push(if_then(translatable, {
        handle.insert(0, label("translate"));
        handle
    }));
    body.extend(dp.done());

    pb.thread("main", vec![forever(body)]);
    let prog = pb.build().expect("nat program is well-formed");
    // The fwd/rev tables are one mapping viewed from two directions, so
    // they live in a CamPair: an eviction or expiry on either side
    // atomically removes its partner (no half-dead mappings), and the
    // engine's TableConfig scales/ages both together.
    Service::with_sized_env(prog, move |cfg| {
        let entries = cfg.entries.unwrap_or(NAT_ENTRIES);
        let mut env = IpEnv::new();
        env.attach(Box::new(PairedCamModel::new(
            "fwd",
            "rev",
            nat_cam_pair(entries, cfg.ttl_frames),
            false,
        )));
        env
    })
}

/// Builds a UDP test frame from `src/sport` to `dst/dport` on `in_port`.
pub fn udp_frame(src: Ipv4, sport: u16, dst: Ipv4, dport: u16, in_port: u8) -> emu_types::Frame {
    use emu_types::{bitutil, checksum, Frame, MacAddr};
    let payload_data = b"nat-test-payload";
    let udp_len = 8 + payload_data.len();
    let total = 20 + udp_len;
    let mut iphdr = vec![
        0x45,
        0x00,
        (total >> 8) as u8,
        total as u8,
        0x11,
        0x22,
        0x40,
        0x00,
        0x40,
        0x11,
        0,
        0,
        0,
        0,
        0,
        0,
        0,
        0,
        0,
        0,
    ];
    iphdr[12..16].copy_from_slice(&src.octets());
    iphdr[16..20].copy_from_slice(&dst.octets());
    let c = checksum::internet_checksum(&iphdr);
    iphdr[10] = (c >> 8) as u8;
    iphdr[11] = c as u8;

    let mut udp = vec![0u8; 8];
    bitutil::set16(&mut udp, 0, sport);
    bitutil::set16(&mut udp, 2, dport);
    bitutil::set16(&mut udp, 4, udp_len as u16);
    // Real UDP checksum over the pseudo-header.
    let mut ph = Vec::new();
    ph.extend_from_slice(&iphdr[12..20]);
    ph.push(0);
    ph.push(17);
    ph.extend_from_slice(&(udp_len as u16).to_be_bytes());
    ph.extend_from_slice(&udp);
    ph.extend_from_slice(payload_data);
    let cc = checksum::internet_checksum(&ph);
    bitutil::set16(&mut udp, 6, if cc == 0 { 0xffff } else { cc });

    let mut payload = iphdr;
    payload.extend_from_slice(&udp);
    payload.extend_from_slice(payload_data);
    let mut f = Frame::ethernet(
        MacAddr::from_u64(0x02_00_00_00_00_41),
        MacAddr::from_u64(0x02_00_00_00_00_42),
        ether_type::IPV4,
        &payload,
    );
    f.in_port = in_port;
    f
}

/// Verifies the UDP checksum of a frame (0 counts as valid/absent).
pub fn udp_checksum_valid(b: &[u8]) -> bool {
    use emu_types::{bitutil, checksum};
    let csum = bitutil::get16(b, 40);
    if csum == 0 {
        return true;
    }
    let udp_len = bitutil::get16(b, 38) as usize;
    let mut ph = Vec::new();
    ph.extend_from_slice(&b[26..34]);
    ph.push(0);
    ph.push(17);
    ph.extend_from_slice(&(udp_len as u16).to_be_bytes());
    ph.extend_from_slice(&b[34..34 + udp_len]);
    checksum::internet_checksum(&ph) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_core::{assert_targets_agree, Target};
    use emu_types::bitutil;

    fn public() -> Ipv4 {
        "203.0.113.1".parse().unwrap()
    }

    fn internal() -> Ipv4 {
        "192.168.1.50".parse().unwrap()
    }

    fn remote() -> Ipv4 {
        "8.8.8.8".parse().unwrap()
    }

    #[test]
    fn outbound_rewrites_source() {
        let svc = nat(public());
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let f = udp_frame(internal(), 3333, remote(), 53, 2);
        let out = inst.process(&f).unwrap();
        assert_eq!(out.tx.len(), 1);
        let b = out.tx[0].frame.bytes();
        // Source rewritten to the public address + ephemeral port.
        assert_eq!(&b[26..30], &public().octets());
        assert_eq!(bitutil::get16(b, 34), FIRST_EPHEMERAL);
        // Destination untouched; sent out of the external port 0.
        assert_eq!(&b[30..34], &remote().octets());
        assert_eq!(out.tx[0].ports, 1 << 0);
        // TTL decremented; checksums valid.
        assert_eq!(b[22], 63);
        assert!(emu_types::checksum::verify(&b[14..34]), "bad IP csum");
        assert!(udp_checksum_valid(b), "bad UDP csum");
    }

    #[test]
    fn inbound_translates_back() {
        let svc = nat(public());
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        // Open the pinhole outbound first.
        inst.process(&udp_frame(internal(), 3333, remote(), 53, 2))
            .unwrap();
        // Reply from the remote to the allocated external port.
        let reply = udp_frame(remote(), 53, public(), FIRST_EPHEMERAL, 0);
        let out = inst.process(&reply).unwrap();
        assert_eq!(out.tx.len(), 1);
        let b = out.tx[0].frame.bytes();
        assert_eq!(&b[30..34], &internal().octets());
        assert_eq!(bitutil::get16(b, 36), 3333);
        // Delivered to the internal physical port the flow came from.
        assert_eq!(out.tx[0].ports, 1 << 2);
        assert!(emu_types::checksum::verify(&b[14..34]));
        assert!(udp_checksum_valid(b));
    }

    #[test]
    fn unsolicited_inbound_dropped() {
        let svc = nat(public());
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let stray = udp_frame(remote(), 53, public(), 55555, 0);
        assert!(inst.process(&stray).unwrap().tx.is_empty());
    }

    #[test]
    fn same_flow_reuses_mapping() {
        let svc = nat(public());
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let f = udp_frame(internal(), 3333, remote(), 53, 2);
        let a = inst.process(&f).unwrap();
        let b = inst.process(&f).unwrap();
        assert_eq!(
            bitutil::get16(a.tx[0].frame.bytes(), 34),
            bitutil::get16(b.tx[0].frame.bytes(), 34),
            "one flow must keep one external port"
        );
        // A different flow gets a different port.
        let g = udp_frame(internal(), 4444, remote(), 53, 2);
        let c = inst.process(&g).unwrap();
        assert_ne!(
            bitutil::get16(a.tx[0].frame.bytes(), 34),
            bitutil::get16(c.tx[0].frame.bytes(), 34)
        );
    }

    #[test]
    fn tcp_flows_translated_with_valid_checksum() {
        let svc = nat(public());
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let mut syn = crate::tcp_ping::syn_frame(4000, 80, 42);
        syn.in_port = 1;
        let out = inst.process(&syn).unwrap();
        assert_eq!(out.tx.len(), 1);
        let b = out.tx[0].frame.bytes();
        assert_eq!(&b[26..30], &public().octets());
        assert!(
            crate::tcp_ping::tcp_checksum_valid(b),
            "bad TCP csum after NAT"
        );
    }

    #[test]
    fn non_ip_traffic_dropped() {
        let svc = nat(public());
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let arp = emu_types::Frame::ethernet(
            emu_types::MacAddr::BROADCAST,
            emu_types::MacAddr::from_u64(5),
            ether_type::ARP,
            &[0; 46],
        );
        assert!(inst.process(&arp).unwrap().tx.is_empty());
    }

    #[test]
    fn targets_agree() {
        let frames = vec![
            udp_frame(internal(), 3333, remote(), 53, 2),
            udp_frame(remote(), 53, public(), FIRST_EPHEMERAL, 0),
            udp_frame(internal(), 4444, remote(), 123, 1),
        ];
        assert_targets_agree(&nat(public()), &frames).unwrap();
    }

    #[test]
    fn port_wrap_skips_live_mappings() {
        // Regression: the allocation cursor used to wrap to `port_base`
        // unconditionally and re-issue a port still owned by a live
        // flow. Simulate the wrap by resetting the cursor, then check
        // the next allocation probes past the live port.
        let svc = nat(public());
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let a = inst
            .process(&udp_frame(internal(), 3333, remote(), 53, 2))
            .unwrap();
        assert_eq!(bitutil::get16(a.tx[0].frame.bytes(), 34), FIRST_EPHEMERAL);
        // The cursor has advanced; wrap it back onto the live port.
        inst.shard_mut(0)
            .write_reg("next_port", u64::from(FIRST_EPHEMERAL));
        let b = inst
            .process(&udp_frame(internal(), 4444, remote(), 53, 2))
            .unwrap();
        assert_eq!(b.tx.len(), 1, "a free port exists, so no drop");
        assert_eq!(
            bitutil::get16(b.tx[0].frame.bytes(), 34),
            FIRST_EPHEMERAL + 1,
            "the live port must be skipped, not re-issued"
        );
        // And the original flow still owns its mapping.
        let reply = udp_frame(remote(), 53, public(), FIRST_EPHEMERAL, 0);
        let out = inst.process(&reply).unwrap();
        assert_eq!(out.tx.len(), 1);
        assert_eq!(bitutil::get16(out.tx[0].frame.bytes(), 36), 3333);
    }

    #[test]
    fn expired_port_is_reclaimed_on_wrap() {
        // With a TTL, a wrapped cursor may reuse a port whose mapping
        // has gone idle: the probe lookup reclaims the expired pair.
        let svc = nat(public());
        let mut inst = svc.engine(Target::Cpu).ttl_frames(2).build().unwrap();
        let a = inst
            .process(&udp_frame(internal(), 3333, remote(), 53, 2))
            .unwrap();
        assert_eq!(bitutil::get16(a.tx[0].frame.bytes(), 34), FIRST_EPHEMERAL);
        // Age the mapping out: frames from another flow advance the
        // epoch while 3333 idles.
        for i in 0..4u16 {
            inst.process(&udp_frame(internal(), 5000 + i, remote(), 53, 2))
                .unwrap();
        }
        inst.shard_mut(0)
            .write_reg("next_port", u64::from(FIRST_EPHEMERAL));
        let b = inst
            .process(&udp_frame(internal(), 4444, remote(), 53, 2))
            .unwrap();
        assert_eq!(
            bitutil::get16(b.tx[0].frame.bytes(), 34),
            FIRST_EPHEMERAL,
            "an expired mapping's port is free for reuse"
        );
        // The expired flow's pinhole is gone on both sides.
        let stale = udp_frame(remote(), 53, public(), FIRST_EPHEMERAL, 0);
        let out = inst.process(&stale).unwrap();
        assert_eq!(out.tx.len(), 1, "the port now belongs to flow 4444");
        assert_eq!(bitutil::get16(out.tx[0].frame.bytes(), 36), 4444);
    }

    #[test]
    fn ttl_ns_bridges_wall_clock_onto_the_frame_epoch() {
        // `ttl_ns(t, ns_per_frame)` must configure exactly the engine
        // `ttl_frames(ceil(t / ns_per_frame))` does: same aging
        // sequence, same expiry, same port reuse. 2 s at one frame per
        // 0.9 s rounds *up* to a 3-frame epoch (never early expiry).
        let svc = nat(public());
        let run = |build: &dyn Fn() -> emu_core::Engine| {
            let mut inst = build();
            inst.process(&udp_frame(internal(), 3333, remote(), 53, 2))
                .unwrap();
            // Two other-flow frames: 2 idle epochs — not yet expired
            // under the 3-frame TTL, so the reply still translates.
            for i in 0..2u16 {
                inst.process(&udp_frame(internal(), 5000 + i, remote(), 53, 2))
                    .unwrap();
            }
            let alive = inst
                .process(&udp_frame(remote(), 53, public(), FIRST_EPHEMERAL, 0))
                .unwrap()
                .tx
                .len();
            // The reply touched the mapping; now let it idle past TTL.
            for i in 0..4u16 {
                inst.process(&udp_frame(internal(), 6000 + i, remote(), 123, 2))
                    .unwrap();
            }
            let expired = inst
                .process(&udp_frame(remote(), 53, public(), FIRST_EPHEMERAL, 0))
                .unwrap()
                .tx
                .len();
            (alive, expired)
        };
        let by_frames = run(&|| svc.engine(Target::Cpu).ttl_frames(3).build().unwrap());
        let by_ns = run(&|| {
            svc.engine(Target::Cpu)
                .ttl_ns(2_000_000_000.0, 900_000_000.0)
                .build()
                .unwrap()
        });
        assert_eq!(by_frames, (1, 0), "alive inside TTL, dead past it");
        assert_eq!(by_ns, by_frames, "the ns bridge is the frame TTL");
    }

    #[test]
    fn fill_past_capacity_keeps_pair_consistent_on_all_backends() {
        // Regression for the paired-CAM desync: overflowing the
        // translation tables must evict fwd/rev entries as a unit, so
        // every surviving mapping works in both directions and every
        // evicted mapping is dead in both.
        use emu_core::Backend;
        let entries = 4usize;
        let flows: Vec<u16> = (0..6).map(|i| 3000 + i * 11).collect();
        let run = |build: &dyn Fn(&Service) -> emu_core::Engine| {
            let svc = nat(public());
            let mut inst = build(&svc);
            let mut alloc = Vec::new();
            for &sport in &flows {
                let out = inst
                    .process(&udp_frame(internal(), sport, remote(), 53, 2))
                    .unwrap();
                assert_eq!(out.tx.len(), 1);
                alloc.push(bitutil::get16(out.tx[0].frame.bytes(), 34));
            }
            // Both tables sit exactly at capacity with equal eviction
            // counts (pair eviction charges both sides).
            let snap = inst.telemetry().unwrap();
            let cams = &snap.shards[0].cams;
            let fwd = cams.iter().find(|c| c.prefix == "fwd").unwrap();
            let rev = cams.iter().find(|c| c.prefix == "rev").unwrap();
            assert_eq!(fwd.occupancy, entries as u64);
            assert_eq!(rev.occupancy, entries as u64);
            // Each evicted mapping is charged on both sides: the side
            // that overflowed and its partner.
            assert_eq!(fwd.evictions, (flows.len() - entries) as u64);
            assert_eq!(rev.evictions, (flows.len() - entries) as u64);
            // Probe inbound: survivors translate back to exactly their
            // owner; evicted ports are dead.
            let mut survivors = Vec::new();
            for (i, &port) in alloc.iter().enumerate() {
                let out = inst
                    .process(&udp_frame(remote(), 53, public(), port, 0))
                    .unwrap();
                if out.tx.is_empty() {
                    continue;
                }
                let b = out.tx[0].frame.bytes();
                assert_eq!(&b[30..34], &internal().octets());
                assert_eq!(bitutil::get16(b, 36), flows[i], "wrong owner");
                survivors.push(i);
            }
            assert_eq!(survivors.len(), entries, "exactly capacity survive");
            // Each surviving flow still owns its port outbound (a fwd
            // hit — no mutation), closing the bidirectional check.
            for &i in &survivors {
                let out = inst
                    .process(&udp_frame(internal(), flows[i], remote(), 53, 2))
                    .unwrap();
                assert_eq!(bitutil::get16(out.tx[0].frame.bytes(), 34), alloc[i]);
            }
        };
        run(&|svc| {
            svc.engine(Target::Fpga)
                .table_entries(entries)
                .build()
                .unwrap()
        });
        run(&|svc| {
            svc.engine(Target::Cpu)
                .backend(Backend::Compiled)
                .table_entries(entries)
                .build()
                .unwrap()
        });
        run(&|svc| {
            svc.engine(Target::Cpu)
                .backend(Backend::TreeWalk)
                .table_entries(entries)
                .build()
                .unwrap()
        });
    }

    #[test]
    fn fpga_rejects_scaled_up_tables() {
        let svc = nat(public());
        let err = svc
            .engine(Target::Fpga)
            .table_entries(1_000_000)
            .build()
            .unwrap_err();
        assert!(format!("{err}").contains("BRAM"), "got: {err}");
        // The same size builds fine on Cpu.
        assert!(svc
            .engine(Target::Cpu)
            .table_entries(1_000_000)
            .build()
            .is_ok());
    }
}
