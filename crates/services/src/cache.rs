//! In-dataplane look-aside LRU cache (§4.4).
//!
//! "SwitchKV uses SDN-enabled switches to dynamically route read requests
//! to a cache if content is available. This idea can be extended to
//! directly implement a cache in the data plane, reducing load on storage
//! servers. Implementing a cache in a DSL such as P4, however, would be
//! difficult, because the eviction logic must be managed by the control
//! plane. In contrast, with Emu, one can easily implement a look-aside,
//! least-recently-used (LRU) cache in a few lines" — Figure 9.
//!
//! The cache fronts a memcached storage server living on
//! [`SERVER_PORT`]: GET hits are answered from the LRU directly; misses
//! and SETs are forwarded to the server (write-through populates the
//! cache). Eviction is entirely in the dataplane, courtesy of the
//! NaughtyQ recency queue.

use emu_core::csum::csum_update_word;
use emu_core::ipblock::LruIf;
use emu_core::proto::{Ipv4Wrapper, UdpWrapper};
use emu_core::{service_builder, Service};
use emu_rtl::{CamModel, IpEnv, NaughtyQModel};
use emu_types::proto::{ether_type, ip_proto, port};
use kiwi_ir::dsl::*;

/// Physical port of the backing storage server.
pub const SERVER_PORT: u8 = 0;

/// Cache capacity in entries.
pub const CACHE_SLOTS: usize = 64;

/// Maximum key bytes (same wire format as the memcached service).
pub const MAX_KEY: usize = 8;

const CAM_KEY_BITS: u16 = 8 + (MAX_KEY as u16) * 8;
/// Slot store entry: key tag ++ 64-bit value.
const TAGGED_BITS: u16 = CAM_KEY_BITS + 64;
const MC_HDR: usize = UdpWrapper::PAYLOAD;
const CMD: usize = MC_HDR + 8;
const FRAME_CAP: usize = 512;

/// Builds the look-aside cache service.
pub fn lru_cache() -> Service {
    let (mut pb, dp) = service_builder("emu_lru_cache", FRAME_CAP);
    let ip = Ipv4Wrapper::new(dp);
    let udp = UdpWrapper::new(dp);
    // Slots store {key_tag, value}: the tag rejects stale CAM mappings
    // left behind when NaughtyQ reuses a slot (the Figure 9 sketch omits
    // this; a deployable cache cannot).
    let lru = LruIf::declare(&mut pb, "lru", CAM_KEY_BITS, TAGGED_BITS);

    let scratch48 = pb.reg("scratch48", 48);
    let scratch32 = pb.reg("scratch32", 32);
    let scratch16 = pb.reg("scratch16", 16);
    let key = pb.reg("key", (MAX_KEY as u16) * 8);
    let klen = pb.reg("klen", 8);
    let idx = pb.reg("idx", 16);
    let b = pb.reg("b", 8);
    let bad = pb.reg("bad", 1);
    let matched = pb.reg("matched", 1);
    let result = pb.reg("result", TAGGED_BITS);
    let idx_scratch = pb.reg("idx_scratch", 16);
    let value = pb.reg("value", 64);
    let old_total = pb.reg("old_total", 16);
    let csum_new = pb.reg("csum_new", 16);
    let reply_len = pb.reg("reply_len", 16);
    // Cache statistics.
    let n_hits = pb.reg("n_hits", 32);
    let n_misses = pb.reg("n_misses", 32);

    let cam_key = concat(var(klen), var(key));

    let parse_key = |start: usize| -> Vec<kiwi_ir::Stmt> {
        vec![
            assign(key, lit(0, (MAX_KEY as u16) * 8)),
            assign(klen, lit(0, 8)),
            assign(bad, fls()),
            assign(idx, lit(start as u64, 16)),
            while_loop(
                tru(),
                vec![
                    assign(b, dp.byte_dyn(var(idx))),
                    if_then(
                        bor(
                            eq(var(b), lit(b' ' as u64, 8)),
                            eq(var(b), lit(b'\r' as u64, 8)),
                        ),
                        vec![break_loop()],
                    ),
                    if_then(
                        ge(var(klen), lit(MAX_KEY as u64, 8)),
                        vec![assign(bad, tru()), break_loop()],
                    ),
                    assign(
                        key,
                        bor(
                            shl(var(key), lit(8, 8)),
                            resize(var(b), (MAX_KEY as u16) * 8),
                        ),
                    ),
                    assign(klen, add(var(klen), lit(1, 8))),
                    assign(idx, add(var(idx), lit(1, 16))),
                    pause(),
                ],
            ),
            if_then(eq(var(klen), lit(0, 8)), vec![assign(bad, tru())]),
        ]
    };

    // Hit reply: VALUE <key> 0 8\r\n<value>\r\nEND\r\n, mirroring the
    // memcached service's response shape.
    let mut hit_reply = vec![assign(n_hits, add(var(n_hits), lit(1, 32)))];
    for (i, byte) in b"VALUE ".iter().enumerate() {
        hit_reply.push(dp.set8(CMD + i, lit(u64::from(*byte), 8)));
    }
    hit_reply.push(assign(idx, lit(0, 16)));
    hit_reply.push(while_loop(
        lt(var(idx), resize(var(klen), 16)),
        vec![
            dp.set8_dyn(
                add(lit((CMD + 6) as u64, 16), var(idx)),
                resize(
                    shr(
                        var(key),
                        mul(
                            sub(resize(var(klen), 16), add(var(idx), lit(1, 16))),
                            lit(8, 16),
                        ),
                    ),
                    8,
                ),
            ),
            assign(idx, add(var(idx), lit(1, 16))),
            pause(),
        ],
    ));
    let mid = pb.reg("mid", 16);
    hit_reply.push(assign(
        mid,
        add(lit((CMD + 6) as u64, 16), resize(var(klen), 16)),
    ));
    for (i, byte) in b" 0 8\r\n".iter().enumerate() {
        hit_reply.push(dp.set8_dyn(add(var(mid), lit(i as u64, 16)), lit(u64::from(*byte), 8)));
    }
    let vstart = pb.reg("vstart", 16);
    hit_reply.push(assign(vstart, add(var(mid), lit(6, 16))));
    for i in 0..8usize {
        let hi = ((7 - i) * 8 + 7) as u16;
        hit_reply.push(dp.set8_dyn(
            add(var(vstart), lit(i as u64, 16)),
            slice(var(result), hi, hi - 7),
        ));
    }
    let tail = pb.reg("tail", 16);
    hit_reply.push(assign(tail, add(var(vstart), lit(8, 16))));
    for (i, byte) in b"\r\nEND\r\n".iter().enumerate() {
        hit_reply.push(dp.set8_dyn(add(var(tail), lit(i as u64, 16)), lit(u64::from(*byte), 8)));
    }
    // Reply plumbing.
    hit_reply.push(assign(reply_len, add(resize(var(klen), 16), lit(27, 16))));
    hit_reply.extend(dp.swap_macs(scratch48));
    hit_reply.extend(ip.swap_addrs(scratch32));
    hit_reply.extend(udp.swap_ports(scratch16));
    hit_reply.extend(udp.clear_checksum());
    let frame_len = add(lit(CMD as u64, 16), var(reply_len));
    let new_total = sub(frame_len.clone(), lit(14, 16));
    hit_reply.push(assign(old_total, ip.total_len()));
    hit_reply.extend(dp.set16(16, new_total.clone()));
    hit_reply.extend(dp.set16_via(
        csum_new,
        emu_types::proto::offset::IPV4_CSUM,
        csum_update_word(ip.header_checksum(), var(old_total), new_total),
    ));
    hit_reply.extend(udp.set_len(sub(frame_len.clone(), lit(34, 16))));
    hit_reply.push(dp.set_output_port(dp.input_port()));
    hit_reply.extend(dp.transmit(frame_len));

    // Miss: count and forward the original request to the server.
    let mut miss_fwd = vec![assign(n_misses, add(var(n_misses), lit(1, 32)))];
    miss_fwd.push(dp.set_output_port(lit(u64::from(SERVER_PORT), 8)));
    miss_fwd.extend(dp.transmit(dp.rx_len()));

    // GET: probe the LRU.
    let mut get_body = parse_key(CMD + 4);
    let mut probe = lru.lookup(cam_key.clone(), matched, result, idx_scratch);
    // Tag check: a slot reused for another key must read as a miss.
    probe.push(assign(
        matched,
        band(
            var(matched),
            eq(slice(var(result), TAGGED_BITS - 1, 64), cam_key.clone()),
        ),
    ));
    probe.push(if_else(var(matched), hit_reply, miss_fwd.clone()));
    get_body.push(if_else(var(bad), miss_fwd.clone(), probe));

    // SET: write-through — populate the LRU and forward to the server.
    let mut set_body = parse_key(CMD + 4);
    // Locate the 8-byte data block after the command line.
    let mut find_data = vec![while_loop(
        band(
            ne(dp.byte_dyn(var(idx)), lit(b'\n' as u64, 8)),
            lt(var(idx), lit((FRAME_CAP - 9) as u64, 16)),
        ),
        vec![assign(idx, add(var(idx), lit(1, 16))), pause()],
    )];
    find_data.push(assign(idx, add(var(idx), lit(1, 16))));
    find_data.push(assign(value, lit(0, 64)));
    for _ in 0..8 {
        find_data.push(assign(
            value,
            bor(
                shl(var(value), lit(8, 8)),
                resize(dp.byte_dyn(var(idx)), 64),
            ),
        ));
        find_data.push(assign(idx, add(var(idx), lit(1, 16))));
    }
    find_data.extend(lru.cache(
        cam_key.clone(),
        concat(cam_key.clone(), var(value)),
        idx_scratch,
    ));
    find_data.push(dp.set_output_port(lit(u64::from(SERVER_PORT), 8)));
    find_data.extend(dp.transmit(dp.rx_len()));
    set_body.push(if_else(var(bad), miss_fwd.clone(), find_data));

    // Server replies (arriving on SERVER_PORT) are flooded back toward
    // clients unchanged — this prototype keeps no per-request client
    // state, like the paper's look-aside sketch.
    let mut from_server = vec![dp.broadcast()];
    from_server.extend(dp.transmit(dp.rx_len()));

    let is_mc = band(
        band(
            dp.ethertype_is(ether_type::IPV4),
            ip.protocol_is(ip_proto::UDP),
        ),
        band(
            eq(udp.dst_port(), lit(u64::from(port::MEMCACHED), 16)),
            lnot(ip.has_options()),
        ),
    );
    let cmd0 = dp.byte(CMD);
    let client_dispatch = if_else(
        eq(cmd0.clone(), lit(b'g' as u64, 8)),
        get_body,
        vec![if_else(eq(cmd0, lit(b's' as u64, 8)), set_body, miss_fwd)],
    );

    let mut body = vec![dp.rx_wait(), label("rx")];
    body.push(if_else(
        eq(dp.input_port(), lit(u64::from(SERVER_PORT), 8)),
        from_server,
        vec![if_then(is_mc, vec![client_dispatch])],
    ));
    body.extend(dp.done());

    pb.thread("main", vec![forever(body)]);
    let prog = pb.build().expect("cache program is well-formed");
    Service::with_env(prog, || {
        let mut env = IpEnv::new();
        env.attach(Box::new(CamModel::new(
            "lru_cam",
            2 * CACHE_SLOTS,
            CAM_KEY_BITS,
            16,
            false,
        )));
        env.attach(Box::new(NaughtyQModel::new(
            "lru_q",
            CACHE_SLOTS,
            TAGGED_BITS,
        )));
        env
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memcached::{reply_text, request_frame};
    use emu_core::Target;

    fn client_frame(body: &str, id: u16) -> emu_types::Frame {
        let mut f = request_frame(body, id);
        f.in_port = 2; // a client port
        f
    }

    #[test]
    fn miss_forwards_to_server() {
        let svc = lru_cache();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let out = inst.process(&client_frame("get foo\r\n", 1)).unwrap();
        assert_eq!(out.tx.len(), 1);
        assert_eq!(out.tx[0].ports, 1 << SERVER_PORT);
        // Forwarded unchanged.
        assert_eq!(
            out.tx[0].frame.bytes(),
            client_frame("get foo\r\n", 1).bytes()
        );
        assert_eq!(inst.read_reg("n_misses").unwrap().to_u64(), 1);
    }

    #[test]
    fn set_populates_then_get_hits_locally() {
        let svc = lru_cache();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        // SET goes through to the server AND populates the cache.
        let out = inst
            .process(&client_frame("set foo 0 0 8\r\nAAAABBBB\r\n", 1))
            .unwrap();
        assert_eq!(out.tx[0].ports, 1 << SERVER_PORT);
        // GET is now served from the dataplane, back to the client port.
        let out = inst.process(&client_frame("get foo\r\n", 2)).unwrap();
        assert_eq!(out.tx[0].ports, 1 << 2);
        assert_eq!(
            reply_text(&out.tx[0].frame),
            b"VALUE foo 0 8\r\nAAAABBBB\r\nEND\r\n"
        );
        assert_eq!(inst.read_reg("n_hits").unwrap().to_u64(), 1);
    }

    #[test]
    fn lru_evicts_coldest_entry() {
        let svc = lru_cache();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        // Fill the cache beyond capacity with distinct keys.
        for i in 0..(CACHE_SLOTS + 1) {
            let k = format!("k{i:03}");
            inst.process(&client_frame(
                &format!("set {k} 0 0 8\r\nVVVV{i:04}\r\n"),
                i as u16,
            ))
            .unwrap();
        }
        // k000 was least recently used → must now miss.
        let out = inst.process(&client_frame("get k000\r\n", 999)).unwrap();
        assert_eq!(out.tx[0].ports, 1 << SERVER_PORT, "evicted key must miss");
        // The most recent key still hits.
        let last = format!("get k{:03}\r\n", CACHE_SLOTS);
        let out = inst.process(&client_frame(&last, 1000)).unwrap();
        assert_eq!(out.tx[0].ports, 1 << 2, "hot key must hit");
    }

    #[test]
    fn touch_on_get_protects_entry() {
        let svc = lru_cache();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        for i in 0..CACHE_SLOTS {
            let k = format!("k{i:03}");
            inst.process(&client_frame(
                &format!("set {k} 0 0 8\r\nVVVV{i:04}\r\n"),
                i as u16,
            ))
            .unwrap();
        }
        // Touch k000 so k001 becomes the LRU victim.
        inst.process(&client_frame("get k000\r\n", 500)).unwrap();
        inst.process(&client_frame("set newkey 0 0 8\r\nNNNNNNNN\r\n", 501))
            .unwrap();
        let out = inst.process(&client_frame("get k000\r\n", 502)).unwrap();
        assert_eq!(out.tx[0].ports, 1 << 2, "touched key must survive eviction");
        let out = inst.process(&client_frame("get k001\r\n", 503)).unwrap();
        assert_eq!(out.tx[0].ports, 1 << SERVER_PORT, "victim must be k001");
    }

    #[test]
    fn server_replies_flooded_to_clients() {
        let svc = lru_cache();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let mut f = request_frame("VALUE x 0 8\r\nZZZZZZZZ\r\nEND\r\n", 9);
        f.in_port = SERVER_PORT;
        let out = inst.process(&f).unwrap();
        assert_eq!(out.tx[0].ports, 0b1111 & !(1 << SERVER_PORT));
    }
}
