//! Sequential tree-walking interpreter: the *reference* software
//! semantics.
//!
//! This is the slow-but-obviously-correct CPU backend. Production CPU
//! execution goes through the compiled micro-op backend in
//! [`mod@crate::compile`], which must stay byte-identical to this
//! interpreter (the differential suites compare them directly, and CI
//! runs the whole test suite once with the tree-walker forced via
//! `EMU_CPU_BACKEND=treewalk` so this reference cannot rot).
//!
//! The interpreter executes the flattened op stream of each thread until a
//! `Pause`, then hands control to the environment — virtual NICs, IP-block
//! behavioural models, the Mininet-analogue network — exactly once per
//! "cycle". Because the FSM target advances attached models once per clock
//! and the interpreter advances them once per pause, a program observes
//! the same handshake sequence on both targets (§3.4's hash-seed protocol
//! relies on this).

use crate::ast::{BinOp, Expr, IrError, IrResult, UnOp};
use crate::flat::{FlatProgram, Op};
use crate::program::{Program, SigDir};
use emu_types::Bits;

/// Mutable machine state shared with the environment between cycles.
#[derive(Debug, Clone)]
pub struct MachineState {
    /// Register values, indexed by `VarId`.
    pub vars: Vec<Bits>,
    /// Array contents, indexed by `ArrId`.
    pub arrays: Vec<Vec<Bits>>,
    /// Latched input-signal values, indexed by `SigId` (entries for output
    /// signals are unused). The environment writes these in [`Env::tick`].
    pub sigs_in: Vec<Bits>,
    /// Current output-signal values, indexed by `SigId`.
    pub sigs_out: Vec<Bits>,
    /// Per-array write high-water mark, indexed by `ArrId`: one past the
    /// highest slot that may differ from zero. Both execution backends
    /// bump this on every `ArrWrite`; platform drivers use it to bound
    /// how much of a buffer they must re-initialize between frames (the
    /// batch fast path), and reset it after re-filling a prefix.
    pub arr_high: Vec<usize>,
}

impl MachineState {
    /// Builds the reset state for `prog`: registers and output signals at
    /// their declared init values, arrays loaded with their initializers.
    pub fn init(prog: &Program) -> Self {
        MachineState {
            vars: prog.vars().iter().map(|v| v.init.clone()).collect(),
            arrays: prog
                .arrays()
                .iter()
                .map(|a| {
                    let mut data = vec![Bits::zero(a.elem_width); a.len];
                    for (i, v) in &a.init {
                        data[*i] = v.resize(a.elem_width);
                    }
                    data
                })
                .collect(),
            arr_high: prog
                .arrays()
                .iter()
                .map(|a| a.init.iter().map(|(i, _)| i + 1).max().unwrap_or(0))
                .collect(),
            sigs_in: prog.signals().iter().map(|s| Bits::zero(s.width)).collect(),
            sigs_out: prog.signals().iter().map(|s| s.init.clone()).collect(),
        }
    }

    /// Reads an input or output signal by id.
    pub fn signal(&self, prog: &Program, name: &str) -> Option<&Bits> {
        let id = prog.signal_by_name(name)?;
        let decl = prog.signal(id)?;
        Some(match decl.dir {
            SigDir::In => &self.sigs_in[id.0 as usize],
            SigDir::Out => &self.sigs_out[id.0 as usize],
        })
    }

    /// Records that array `arr` had slot `idx` written, lifting its
    /// high-water mark. Every array store in an execution backend must
    /// call this so platform drivers can trust [`MachineState::arr_high`].
    #[inline]
    pub fn note_arr_write(&mut self, arr: usize, idx: usize) {
        if self.arr_high[arr] < idx + 1 {
            self.arr_high[arr] = idx + 1;
        }
    }

    /// Drives an input signal by name; ignores unknown names.
    pub fn drive(&mut self, prog: &Program, name: &str, v: Bits) {
        if let Some(id) = prog.signal_by_name(name) {
            let w = prog.signal(id).map(|d| d.width).unwrap_or(1);
            self.sigs_in[id.0 as usize] = v.resize(w);
        }
    }
}

/// The environment a program runs inside: platform + IP blocks.
pub trait Env {
    /// Called once per cycle, after all threads have paused/halted. The
    /// environment samples output signals and arrays, steps its models,
    /// and drives input signals for the next cycle.
    fn tick(&mut self, cycle: u64, prog: &Program, state: &mut MachineState);

    /// Called once per delivered frame, before the frame is loaded into
    /// the core's buffer. Environments that model time in frame epochs
    /// (e.g. TTL-expiring tables) advance their clock here; idle cycles
    /// between frames never advance it. Defaults to a no-op.
    fn frame_start(&mut self) {}
}

/// An environment with no attached hardware: inputs stay zero.
pub struct NullEnv;

impl Env for NullEnv {
    fn tick(&mut self, _cycle: u64, _prog: &Program, _state: &mut MachineState) {}
}

/// Observer hooks used by the debug tooling on the software target.
pub trait Observer {
    /// A register was assigned.
    fn on_assign(&mut self, _var: u32, _old: &Bits, _new: &Bits) {}
    /// A label was crossed.
    fn on_label(&mut self, _name: &str) {}
    /// An extension point was crossed.
    fn on_ext_point(&mut self, _id: u32, _state: &mut MachineState) {}
}

/// A no-op observer.
pub struct NullObserver;

impl Observer for NullObserver {}

#[derive(Debug, Clone)]
struct ThreadCtx {
    pc: usize,
    halted: bool,
}

/// Interpreter instance for one program.
pub struct Machine {
    flat: FlatProgram,
    state: MachineState,
    threads: Vec<ThreadCtx>,
    cycle: u64,
    ops_executed: u64,
    /// Abort threshold for a single thread-cycle without a pause.
    pub max_ops_per_cycle: u64,
}

impl Machine {
    /// Builds a machine from a flattened program.
    pub fn new(flat: FlatProgram) -> Self {
        let state = MachineState::init(&flat.prog);
        let threads = flat
            .threads
            .iter()
            .map(|_| ThreadCtx {
                pc: 0,
                halted: false,
            })
            .collect();
        Machine {
            flat,
            state,
            threads,
            cycle: 0,
            ops_executed: 0,
            max_ops_per_cycle: 100_000,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.flat.prog
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total ops executed (software-target profiling).
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Immutable state access.
    pub fn state(&self) -> &MachineState {
        &self.state
    }

    /// Mutable state access (environment-side pokes between cycles).
    pub fn state_mut(&mut self) -> &mut MachineState {
        &mut self.state
    }

    /// True when every thread has halted.
    pub fn halted(&self) -> bool {
        self.threads.iter().all(|t| t.halted)
    }

    /// Runs one clock cycle: each live thread executes until it pauses or
    /// halts, then `env.tick` runs once.
    pub fn step_cycle(&mut self, env: &mut dyn Env, obs: &mut dyn Observer) -> IrResult<()> {
        for ti in 0..self.threads.len() {
            self.run_thread_to_pause(ti, obs)?;
        }
        self.cycle += 1;
        env.tick(self.cycle, &self.flat.prog, &mut self.state);
        Ok(())
    }

    /// Runs `n` cycles (stops early if all threads halt).
    pub fn run_cycles(
        &mut self,
        n: u64,
        env: &mut dyn Env,
        obs: &mut dyn Observer,
    ) -> IrResult<u64> {
        for i in 0..n {
            if self.halted() {
                return Ok(i);
            }
            self.step_cycle(env, obs)?;
        }
        Ok(n)
    }

    fn run_thread_to_pause(&mut self, ti: usize, obs: &mut dyn Observer) -> IrResult<()> {
        if self.threads[ti].halted {
            return Ok(());
        }
        // Split borrows: the op stream and program are read-only, state
        // and the thread context are mutated — so ops are executed in
        // place, never cloned.
        let max_ops = self.max_ops_per_cycle;
        let Machine {
            flat,
            state,
            threads,
            ops_executed,
            ..
        } = self;
        let thread = &flat.threads[ti];
        let prog = &flat.prog;
        let ctx = &mut threads[ti];
        let mut budget = max_ops;
        loop {
            let pc = ctx.pc;
            let Some(op) = thread.ops.get(pc) else {
                ctx.halted = true;
                return Ok(());
            };
            *ops_executed += 1;
            budget = budget.checked_sub(1).ok_or_else(|| {
                IrError(format!(
                    "thread {} exceeded {} ops without pausing (missing pause()?)",
                    thread.name, max_ops
                ))
            })?;
            match op {
                Op::Assign(dst, e) => {
                    let w = prog.var(*dst).expect("validated").width;
                    let v = eval(e, prog, state).resize(w);
                    obs.on_assign(dst.0, &state.vars[dst.0 as usize], &v);
                    state.vars[dst.0 as usize] = v;
                    ctx.pc = pc + 1;
                }
                Op::ArrWrite(arr, idx, val) => {
                    let decl = prog.array(*arr).expect("validated");
                    let w = decl.elem_width;
                    let i = eval(idx, prog, state).to_u64() as usize;
                    let v = eval(val, prog, state).resize(w);
                    let data = &mut state.arrays[arr.0 as usize];
                    if i < data.len() {
                        data[i] = v;
                        state.note_arr_write(arr.0 as usize, i);
                    }
                    ctx.pc = pc + 1;
                }
                Op::SigWrite(sig, val) => {
                    let w = prog.signal(*sig).expect("validated").width;
                    let v = eval(val, prog, state).resize(w);
                    state.sigs_out[sig.0 as usize] = v;
                    ctx.pc = pc + 1;
                }
                Op::Branch(cond, if_false) => {
                    let c = eval(cond, prog, state);
                    ctx.pc = if c.to_bool() { pc + 1 } else { *if_false };
                }
                Op::Jump(t) => {
                    ctx.pc = *t;
                }
                Op::Pause => {
                    ctx.pc = pc + 1;
                    return Ok(());
                }
                Op::Label(name) => {
                    obs.on_label(name);
                    ctx.pc = pc + 1;
                }
                Op::ExtPoint(id) => {
                    obs.on_ext_point(*id, state);
                    ctx.pc = pc + 1;
                }
                Op::Halt => {
                    ctx.halted = true;
                    return Ok(());
                }
            }
        }
    }
}

/// Evaluates an expression against machine state.
///
/// Follows the width rules of [`crate::ast`]: binary operands are
/// zero-extended to the result width; comparisons are unsigned; shift
/// amounts ≥ width produce zero; out-of-range array reads produce zero.
pub fn eval(e: &Expr, prog: &Program, st: &MachineState) -> Bits {
    match e {
        Expr::Const(b) => b.clone(),
        Expr::Var(v) => st.vars[v.0 as usize].clone(),
        Expr::ArrRead(a, idx) => {
            let decl = prog.array(*a).expect("validated");
            let i = eval(idx, prog, st).to_u64() as usize;
            st.arrays[a.0 as usize]
                .get(i)
                .cloned()
                .unwrap_or_else(|| Bits::zero(decl.elem_width))
        }
        Expr::SigRead(s) => {
            let decl = prog.signal(*s).expect("validated");
            match decl.dir {
                SigDir::In => st.sigs_in[s.0 as usize].clone(),
                SigDir::Out => st.sigs_out[s.0 as usize].clone(),
            }
        }
        Expr::Un(op, e) => {
            let v = eval(e, prog, st);
            match op {
                UnOp::Not => v.not(),
                UnOp::Neg => Bits::zero(v.width()).wrapping_sub(&v),
                UnOp::RedOr => Bits::from_bool(!v.is_zero()),
            }
        }
        Expr::Bin(op, l, r) => {
            let lv = eval(l, prog, st);
            let rv = eval(r, prog, st);
            let w = lv.width().max(rv.width());
            let lw = lv.resize(w);
            let rw = rv.resize(w);
            use std::cmp::Ordering::*;
            match op {
                BinOp::Add => lw.wrapping_add(&rw),
                BinOp::Sub => lw.wrapping_sub(&rw),
                BinOp::Mul => lw.wrapping_mul(&rw),
                BinOp::And => lw.and(&rw),
                BinOp::Or => lw.or(&rw),
                BinOp::Xor => lw.xor(&rw),
                BinOp::Shl => {
                    let n = rv.to_u64().min(u64::from(u32::MAX)) as u32;
                    lv.shl(n)
                }
                BinOp::Shr => {
                    let n = rv.to_u64().min(u64::from(u32::MAX)) as u32;
                    lv.shr(n)
                }
                BinOp::Eq => Bits::from_bool(lw == rw),
                BinOp::Ne => Bits::from_bool(lw != rw),
                BinOp::Lt => Bits::from_bool(lw.cmp_u(&rw) == Less),
                BinOp::Le => Bits::from_bool(lw.cmp_u(&rw) != Greater),
                BinOp::Gt => Bits::from_bool(lw.cmp_u(&rw) == Greater),
                BinOp::Ge => Bits::from_bool(lw.cmp_u(&rw) != Less),
            }
        }
        Expr::Mux(c, t, e2) => {
            let tv = eval(t, prog, st);
            let ev = eval(e2, prog, st);
            let w = tv.width().max(ev.width());
            if eval(c, prog, st).to_bool() {
                tv.resize(w)
            } else {
                ev.resize(w)
            }
        }
        Expr::Slice(e, hi, lo) => eval(e, prog, st).slice(*hi, *lo),
        Expr::Concat(h, l) => eval(h, prog, st).concat(&eval(l, prog, st)),
        Expr::Resize(e, w) => eval(e, prog, st).resize(*w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::flat::flatten;
    use crate::program::{ArrayBacking, ProgramBuilder};

    fn machine(pb: ProgramBuilder) -> Machine {
        Machine::new(flatten(&pb.build().unwrap()).unwrap())
    }

    #[test]
    fn counter_counts() {
        let mut pb = ProgramBuilder::new("counter");
        let c = pb.reg("c", 32);
        pb.thread(
            "main",
            vec![forever(vec![assign(c, add(var(c), lit(1, 32))), pause()])],
        );
        let mut m = machine(pb);
        m.run_cycles(10, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(m.state().vars[0].to_u64(), 10);
        assert_eq!(m.cycle(), 10);
    }

    #[test]
    fn halting_program_stops() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        pb.thread("main", vec![assign(a, lit(42, 8)), halt()]);
        let mut m = machine(pb);
        let ran = m.run_cycles(100, &mut NullEnv, &mut NullObserver).unwrap();
        assert!(m.halted());
        assert!(ran <= 2);
        assert_eq!(m.state().vars[0].to_u64(), 42);
    }

    #[test]
    fn missing_pause_detected() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        pb.thread(
            "main",
            vec![forever(vec![assign(a, add(var(a), lit(1, 8)))])],
        );
        let mut m = machine(pb);
        m.max_ops_per_cycle = 1000;
        let err = m.step_cycle(&mut NullEnv, &mut NullObserver).unwrap_err();
        assert!(err.0.contains("without pausing"));
    }

    #[test]
    fn arrays_read_write_with_oob_semantics() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 16);
        let t = pb.array("t", 16, 4, ArrayBacking::LutRam);
        pb.thread(
            "main",
            vec![
                arr_write(t, lit(2, 8), lit(0xbeef, 16)),
                arr_write(t, lit(200, 8), lit(0xdead, 16)), // dropped
                assign(a, arr_read(t, lit(2, 8))),
                halt(),
            ],
        );
        let mut m = machine(pb);
        m.run_cycles(5, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(m.state().vars[0].to_u64(), 0xbeef);
        assert!(m.state().arrays[0].iter().all(|b| b.to_u64() != 0xdead));
    }

    #[test]
    fn oob_array_read_is_zero() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 16);
        let t = pb.array("t", 16, 4, ArrayBacking::LutRam);
        pb.thread(
            "main",
            vec![
                arr_write(t, lit(0, 8), lit(7, 16)),
                assign(a, arr_read(t, lit(99, 8))),
                halt(),
            ],
        );
        let mut m = machine(pb);
        m.run_cycles(5, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(m.state().vars[0].to_u64(), 0);
    }

    #[test]
    fn signal_handshake_with_env() {
        // Program: waits for `ready`, then writes `done` = 1.
        let mut pb = ProgramBuilder::new("p");
        let ready = pb.sig_in("ready", 1);
        let done = pb.sig_out("done", 1);
        pb.thread(
            "main",
            vec![wait_until(sig(ready)), sig_write(done, lit(1, 1)), halt()],
        );

        struct RaiseAt(u64);
        impl Env for RaiseAt {
            fn tick(&mut self, cycle: u64, prog: &Program, st: &mut MachineState) {
                if cycle >= self.0 {
                    st.drive(prog, "ready", Bits::from_u64(1, 1));
                }
            }
        }

        let mut m = machine(pb);
        let mut env = RaiseAt(3);
        m.run_cycles(10, &mut env, &mut NullObserver).unwrap();
        assert!(m.halted());
        assert_eq!(m.state().sigs_out[1].to_u64(), 1);
        // It must have taken at least 3 cycles of waiting.
        assert!(m.cycle() >= 3);
    }

    #[test]
    fn two_threads_run_in_lockstep() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 32);
        let b = pb.reg("b", 32);
        pb.thread(
            "t0",
            vec![forever(vec![assign(a, add(var(a), lit(1, 32))), pause()])],
        );
        pb.thread(
            "t1",
            vec![forever(vec![assign(b, add(var(b), lit(2, 32))), pause()])],
        );
        let mut m = machine(pb);
        m.run_cycles(5, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(m.state().vars[0].to_u64(), 5);
        assert_eq!(m.state().vars[1].to_u64(), 10);
    }

    #[test]
    fn observer_sees_assignments_and_labels() {
        #[derive(Default)]
        struct Spy {
            assigns: u32,
            labels: Vec<String>,
            exts: Vec<u32>,
        }
        impl Observer for Spy {
            fn on_assign(&mut self, _v: u32, _o: &Bits, _n: &Bits) {
                self.assigns += 1;
            }
            fn on_label(&mut self, n: &str) {
                self.labels.push(n.into());
            }
            fn on_ext_point(&mut self, id: u32, _s: &mut MachineState) {
                self.exts.push(id);
            }
        }
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        pb.thread(
            "main",
            vec![label("start"), assign(a, lit(1, 8)), ext_point(7), halt()],
        );
        let mut m = machine(pb);
        let mut spy = Spy::default();
        m.run_cycles(3, &mut NullEnv, &mut spy).unwrap();
        assert_eq!(spy.assigns, 1);
        assert_eq!(spy.labels, vec!["start".to_string()]);
        assert_eq!(spy.exts, vec![7]);
    }

    #[test]
    fn mux_and_compare_semantics() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        let b = pb.reg("b", 8);
        pb.thread(
            "main",
            vec![
                assign(a, lit(200, 8)),
                assign(b, mux(gt(var(a), lit(100, 8)), lit(1, 8), lit(2, 8))),
                halt(),
            ],
        );
        let mut m = machine(pb);
        m.run_cycles(3, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(m.state().vars[1].to_u64(), 1);
    }

    #[test]
    fn neg_and_redor() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        let b = pb.reg("b", 1);
        pb.thread(
            "main",
            vec![
                assign(a, neg(lit(1, 8))),
                assign(b, nonzero(var(a))),
                halt(),
            ],
        );
        let mut m = machine(pb);
        m.run_cycles(3, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(m.state().vars[0].to_u64(), 0xff);
        assert_eq!(m.state().vars[1].to_u64(), 1);
    }
}
