//! The intermediate representation at the centre of the Emu reproduction.
//!
//! In the paper's toolchain (Figure 1), services are written in C#,
//! compiled by Mono to .NET CIL, and then either executed on a CPU or
//! compiled by Kiwi to Verilog. This crate is the CIL analogue: a typed,
//! hardware-shaped imperative IR with
//!
//! * a builder DSL ([`dsl`]) playing the role of the C# surface syntax,
//! * program containers ([`program`]) mirroring Kiwi's split into
//!   registers, arrays (RAMs), boundary signals, and hardware threads,
//! * a structured-to-linear lowering ([`flat`]) shared by all back ends,
//! * a sequential tree-walking interpreter ([`interp`]) — the *reference*
//!   software semantics,
//! * a compiled micro-op backend ([`mod@compile`]) with an optimization pass
//!   pipeline ([`opt`]) — the *fast* software target, byte-identical to
//!   the tree-walker by construction, and
//! * pretty-printers ([`pretty`]) for diagnostics.
//!
//! The FPGA back end (scheduling, FSM generation, resource estimation,
//! Verilog emission) lives in the `kiwi` crate; the cycle-accurate
//! simulator lives in `emu-rtl`.

pub mod ast;
pub mod compile;
pub mod dsl;
pub mod flat;
pub mod interp;
pub mod opt;
pub mod pretty;
pub mod program;

pub use ast::{BinOp, Expr, IrError, IrResult, Stmt, UnOp};
pub use compile::{
    compile, compile_with_passes, mops_to_string, CompiledMachine, CompiledProgram, CompiledThread,
    RegionInfo,
};
pub use flat::{flatten, FlatProgram, FlatThread, Op};
pub use interp::{eval, Env, Machine, MachineState, NullEnv, NullObserver, Observer};
pub use opt::{default_pipeline, env_pipeline, parse_passes, statement_pipeline, Pass};
pub use program::{
    ArrId, ArrayBacking, ArrayDecl, Program, ProgramBuilder, SigDecl, SigDir, SigId, Thread,
    VarDecl, VarId,
};
