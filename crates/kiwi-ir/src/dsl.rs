//! Free-function builder DSL for writing Emu services.
//!
//! This plays the role of C# in the paper: services in `emu-services` are
//! written by composing these constructors, then handed to the back ends.
//! Compare Figure 2 of the paper with the learning switch source in
//! `emu-services::switch` — the structure (and even the comments) map
//! one-to-one.
//!
//! Naming follows the paper's C# fragments where a direct analogue exists
//! (`pause()` for `Kiwi.Pause()`), otherwise standard Rust conventions.

use crate::ast::{BinOp, Expr, Stmt, UnOp};
use crate::program::{ArrId, SigId, VarId};
use emu_types::Bits;

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

/// Literal with explicit width.
pub fn lit(v: u64, width: u16) -> Expr {
    Expr::Const(Bits::from_u64(v, width))
}

/// Literal from a pre-built [`Bits`] value.
pub fn lit_bits(b: Bits) -> Expr {
    Expr::Const(b)
}

/// A 1-bit true.
pub fn tru() -> Expr {
    lit(1, 1)
}

/// A 1-bit false.
pub fn fls() -> Expr {
    lit(0, 1)
}

/// Register read.
pub fn var(v: VarId) -> Expr {
    Expr::Var(v)
}

/// Array element read.
pub fn arr_read(a: ArrId, idx: Expr) -> Expr {
    Expr::ArrRead(a, Box::new(idx))
}

/// Input-signal sample.
pub fn sig(s: SigId) -> Expr {
    Expr::SigRead(s)
}

/// Bitwise NOT.
pub fn not(e: Expr) -> Expr {
    Expr::Un(UnOp::Not, Box::new(e))
}

/// Two's-complement negation.
pub fn neg(e: Expr) -> Expr {
    Expr::Un(UnOp::Neg, Box::new(e))
}

/// OR-reduction to one bit; the idiomatic "is non-zero" test.
pub fn nonzero(e: Expr) -> Expr {
    Expr::Un(UnOp::RedOr, Box::new(e))
}

/// Logical negation of a 1-bit value (or of a reduction).
pub fn lnot(e: Expr) -> Expr {
    Expr::Bin(BinOp::Eq, Box::new(e), Box::new(lit(0, 1)))
}

macro_rules! binop_fn {
    ($(#[$doc:meta])* $name:ident, $op:ident) => {
        $(#[$doc])*
        pub fn $name(l: Expr, r: Expr) -> Expr {
            Expr::Bin(BinOp::$op, Box::new(l), Box::new(r))
        }
    };
}

binop_fn!(/// Modular addition.
    add, Add);
binop_fn!(/// Modular subtraction.
    sub, Sub);
binop_fn!(/// Modular multiplication (low bits).
    mul, Mul);
binop_fn!(/// Bitwise AND.
    band, And);
binop_fn!(/// Bitwise OR.
    bor, Or);
binop_fn!(/// Bitwise XOR.
    bxor, Xor);
binop_fn!(/// Logical shift left.
    shl, Shl);
binop_fn!(/// Logical shift right.
    shr, Shr);
binop_fn!(/// Equality.
    eq, Eq);
binop_fn!(/// Inequality.
    ne, Ne);
binop_fn!(/// Unsigned less-than.
    lt, Lt);
binop_fn!(/// Unsigned less-or-equal.
    le, Le);
binop_fn!(/// Unsigned greater-than.
    gt, Gt);
binop_fn!(/// Unsigned greater-or-equal.
    ge, Ge);

/// Logical AND of 1-bit values (bitwise AND after reduction).
pub fn land(l: Expr, r: Expr) -> Expr {
    band(nonzero(l), nonzero(r))
}

/// Logical OR of 1-bit values.
pub fn lor(l: Expr, r: Expr) -> Expr {
    bor(nonzero(l), nonzero(r))
}

/// Two-way mux: `cond ? t : e`.
pub fn mux(cond: Expr, t: Expr, e: Expr) -> Expr {
    Expr::Mux(Box::new(cond), Box::new(t), Box::new(e))
}

/// Bit slice `[hi:lo]` (inclusive, Verilog order).
pub fn slice(e: Expr, hi: u16, lo: u16) -> Expr {
    Expr::Slice(Box::new(e), hi, lo)
}

/// Concatenation `{hi, lo}`.
pub fn concat(hi: Expr, lo: Expr) -> Expr {
    Expr::Concat(Box::new(hi), Box::new(lo))
}

/// Concatenation of many parts, first argument highest.
pub fn concat_all<I: IntoIterator<Item = Expr>>(parts: I) -> Expr {
    let mut it = parts.into_iter();
    let first = it.next().expect("concat_all needs at least one part");
    it.fold(first, concat)
}

/// Zero-extend or truncate to `width`.
pub fn resize(e: Expr, width: u16) -> Expr {
    Expr::Resize(Box::new(e), width)
}

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

/// Register assignment.
pub fn assign(dst: VarId, val: Expr) -> Stmt {
    Stmt::Assign(dst, val)
}

/// Array element write.
pub fn arr_write(arr: ArrId, idx: Expr, val: Expr) -> Stmt {
    Stmt::ArrWrite(arr, idx, val)
}

/// Output-signal drive.
pub fn sig_write(s: SigId, val: Expr) -> Stmt {
    Stmt::SigWrite(s, val)
}

/// Two-armed conditional.
pub fn if_else(cond: Expr, then_: Vec<Stmt>, else_: Vec<Stmt>) -> Stmt {
    Stmt::If(cond, then_, else_)
}

/// One-armed conditional.
pub fn if_then(cond: Expr, then_: Vec<Stmt>) -> Stmt {
    Stmt::If(cond, then_, Vec::new())
}

/// Pre-tested loop.
pub fn while_loop(cond: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::While(cond, body)
}

/// Infinite loop — the shape of every service main loop.
pub fn forever(body: Vec<Stmt>) -> Stmt {
    Stmt::While(tru(), body)
}

/// Clock-cycle boundary (`Kiwi.Pause()`, §3.2(ii)).
pub fn pause() -> Stmt {
    Stmt::Pause
}

/// Named program point for breakpoints and FSM state naming.
pub fn label(name: &str) -> Stmt {
    Stmt::Label(name.to_string())
}

/// Debug extension point (§3.5).
pub fn ext_point(id: u32) -> Stmt {
    Stmt::ExtPoint(id)
}

/// Exit the innermost loop.
pub fn break_loop() -> Stmt {
    Stmt::Break
}

/// Re-test the innermost loop.
pub fn continue_loop() -> Stmt {
    Stmt::Continue
}

/// Stop the thread.
pub fn halt() -> Stmt {
    Stmt::Halt
}

/// Busy-wait until `cond` holds, pausing each cycle — the DSL rendering of
/// the paper's `while (!ready) { Kiwi.Pause(); }` idiom (Figure 5).
pub fn wait_until(cond: Expr) -> Stmt {
    Stmt::While(lnot(nonzero(cond)), vec![Stmt::Pause])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn concat_all_orders_parts() {
        let e = concat_all([lit(0xa, 4), lit(0xb, 4), lit(0xc, 4)]);
        let mut pb = ProgramBuilder::new("t");
        pb.thread("main", vec![halt()]);
        let p = pb.build().unwrap();
        assert_eq!(e.width(&p).unwrap(), 12);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn concat_all_empty_panics() {
        let _ = concat_all([]);
    }

    #[test]
    fn wait_until_contains_pause() {
        let s = wait_until(lit(0, 1));
        assert!(s.contains_pause());
    }
}
