//! The micro-op optimization pass pipeline.
//!
//! Passes run at lowering time, between [`mod@crate::compile`]'s naive
//! per-statement lowering and the final flatten/retarget step. They
//! operate on **regions** of `Vec<MOp>`. Lowering produces one region
//! per source [`crate::flat::Op`]; before the passes run,
//! `widen_regions` merges runs of consecutive statement regions into
//! single *widened* regions, inside which scratch slots are written
//! exactly once before use (region-local SSA, restored by slot
//! renumbering during the merge).
//!
//! # The observer-visibility analysis
//!
//! Widening is driven by what the outside world can *see or touch* at
//! each statement boundary:
//!
//! * `pause` — [`crate::interp::Env::tick`] may mutate any machine
//!   state (signals, registers, arrays), so a region always **ends**
//!   after a `PauseOp`.
//! * `ext` — [`crate::interp::Observer::on_ext_point`] receives
//!   `&mut MachineState`, so `ExtOp` likewise ends a region.
//! * `jmp` / `halt` — control leaves the straight-line run.
//! * branch *targets* — a region another op jumps to must keep its own
//!   entry point, so it always starts a fresh widened region.
//!
//! Everything else is fair game to sit *inside* a widened region:
//! register/array/signal stores and labels fire observer callbacks
//! ([`crate::interp::Observer::on_assign`],
//! [`crate::interp::Observer::on_label`]) that can inspect the reported
//! values but **cannot mutate** machine state, and an interior
//! `BranchZ` only ever *exits* the region early (extra pure loads on
//! the not-taken path compute into scratch slots no one observes).
//! Terminal micro-ops are never added, removed, or reordered by any
//! pass, so the sequence of observer callbacks, op-budget ticks, and
//! trap points — the externally visible trace — is byte-identical to
//! the naive lowering's.
//!
//! Threads only interleave at pause boundaries (the executor runs each
//! thread to its next pause), so cross-thread interference cannot
//! observe mid-region state either.
//!
//! # Pipelines
//!
//! The default pipeline is
//! [`ConstFold`](Pass::ConstFold) → [`Simplify`](Pass::Simplify) →
//! [`ArrayStrength`](Pass::ArrayStrength) →
//! [`RedundantLoad`](Pass::RedundantLoad) → [`Cse`](Pass::Cse) →
//! [`LoopInvLoad`](Pass::LoopInvLoad) →
//! [`FusePairs`](Pass::FusePairs) → [`CopyProp`](Pass::CopyProp) →
//! [`Coalesce`](Pass::Coalesce) → [`DeadScratch`](Pass::DeadScratch).
//! Constant folding routes through the *same* ALU helpers the executor
//! uses, so a fold can never disagree with execution.
//! [`statement_pipeline`] is the pre-widening-era subset that never
//! moves work across statements. The `EMU_CPU_PASSES` environment
//! variable (see [`env_pipeline`]) selects the pipeline for
//! [`crate::compile::compile`]; `EMU_CPU_DUMP_MOPS=1` dumps the
//! annotated listings of every compiled thread to stderr.
//!
//! # Before / after
//!
//! The statement `a := resize(resize(a + 1, 16), 8)` on an 8-bit
//! register lowers naively to
//!
//! ```text
//!   0: s0 <- var a
//!   1: s1 <- const 0x1
//!   2: s2 <- s0 Add s1 & 0xff
//!   3: s3 <- s2            // resize 8 -> 16: identity copy
//!   4: s4 <- s3 & 0xff     // resize 16 -> 8: mask
//!   5: var a := s4
//! ```
//!
//! after the pipeline the copy is propagated, the mask collapses, and
//! the dead slots disappear:
//!
//! ```text
//!   0: s0 <- var a
//!   1: s1 <- const 0x1
//!   2: s2 <- s0 Add s1 & 0xff
//!   3: s3 <- s2 & 0xff
//!   4: var a := s3
//! ```
//!
//! (each pass is individually testable — see the tests below, which
//! assert on exactly these pretty-printed listings; each `Pass` variant
//! documents its own before/after).

use crate::ast::BinOp;
use crate::compile::{bin_s, bin_w, cmp_s, cmp_w, mask_of, shift_amount, shl_s, shr_s, MOp, Slot};
use crate::program::Program;
use emu_types::Bits;
use std::collections::{HashMap, HashSet};

/// One optimization pass over the lowered regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Evaluate pure micro-ops whose operands are all constants,
    /// replacing them with `ConstS`/`ConstW` loads.
    ConstFold,
    /// Algebraic identities over the small scratch file: an op with an
    /// identity constant operand (`x + 0`, `x | 0`, `x ^ 0`, `x - 0`,
    /// `x * 1`, `x << 0`, `x >> 0`, `x & full`) folds to a copy — or a
    /// mask, when the surviving operand may overflow the result width —
    /// and one with an absorbing operand (`x * 0`, `x & 0`, `x - x`,
    /// `x ^ x`, any compare of a slot against itself) to a constant.
    /// Loop counters and byte cursors lower to exactly these shapes
    /// (`idx + 0` on a first iteration unrolled by hand in the source),
    /// and the copies they leave behind let [`Pass::RedundantLoad`]
    /// unify dynamic array indices by *value*.
    ///
    /// ```text
    ///   0: s1 <- const 0x0        0: s1 <- const 0x0
    ///   1: s2 <- s0 Add s1 & 0xff 1: s2 <- s0 & 0xff
    ///   2: ...               =>   2: ...
    /// ```
    Simplify,
    /// Array-access strength reduction: an element access whose index
    /// is a known constant becomes a direct `LdArrCS`/`LdArrCW` (or
    /// `StArrCS`/`StArrCW`) with the bounds check discharged at compile
    /// time. An out-of-range constant *read* folds to the architectural
    /// zero; an out-of-range constant *store* is left dynamic — it is a
    /// terminal (it ticks the op budget) whose only effect is being
    /// dropped, which the executor's bounds check already provides.
    ///
    /// ```text
    ///   0: s0 <- const 0x2        0: s1 <- t[#2]
    ///   1: s1 <- t[s0]       =>   1: t[#2] := s1
    ///   2: t[s0] := s1
    /// ```
    ArrayStrength,
    /// Redundant-load/store elimination across the statements of a
    /// widened region: a second read of the same register, signal, or
    /// array element becomes a copy of the first, and a read following
    /// a store forwards the stored slot (when the stored value provably
    /// fits the declared width). Stores, pauses, and ext points
    /// invalidate exactly what they can touch.
    ///
    /// ```text
    ///   0: s0 <- var a            0: s0 <- var a
    ///   1: s1 <- const 0x1        1: s1 <- const 0x1
    ///   2: s2 <- s0 Add s1 & 0xff 2: s2 <- s0 Add s1 & 0xff
    ///   3: var a := s2       =>   3: var a := s2
    ///   4: s3 <- var a            4: s3 <- s2
    ///   5: ...                    5: ...
    /// ```
    RedundantLoad,
    /// Local value numbering over the pure micro-ops of a widened
    /// region: an op recomputing a value an earlier op already produced
    /// (same opcode, same copy-resolved operands, commutative operand
    /// order canonicalized) becomes a copy of the earlier result, as
    /// does a re-materialized small constant. Loads are deliberately
    /// *not* value-numbered — [`Pass::RedundantLoad`] owns them, with
    /// the store-invalidation logic that makes them sound.
    ///
    /// ```text
    ///   0: s2 <- s0 Add s1 & 0xffff   0: s2 <- s0 Add s1 & 0xffff
    ///   1: var a := s2                1: var a := s2
    ///   2: s3 <- s1 Add s0 & 0xffff   2: s3 <- s2
    ///   3: ...                   =>   3: ...
    /// ```
    Cse,
    /// Load-pair fusion: a `ConcatS` whose operands are two loads of
    /// *adjacent* elements of the same array — the second index equal
    /// to the first plus one, either as constants or through the very
    /// `Add` that computed it — becomes one fused
    /// `LdArrPairS`/`LdArrPairCS` reading both elements at the concat
    /// site. When only the *low* operand is a load (the inner steps of
    /// a multi-byte concat tower, whose high part is the accumulated
    /// value), the load rides the concat as `ConcatLdS`/`ConcatLdCS`
    /// instead. The displaced loads and index adds die in
    /// [`Pass::DeadScratch`] when nothing else reads them. These are
    /// the shapes every big-endian field access lowers to (Internet
    /// checksum loops, header field extraction): a 16-bit pair read
    /// drops from five micro-ops to two, an n-byte tower from `2n-1`
    /// to `n-1`. A store into the array between a fused load and the
    /// concat blocks the fusion, since the fused op re-reads the
    /// elements.
    ///
    /// ```text
    ///   0: s1 <- frame[s0]            0: s1 <- frame[s0]
    ///   1: s2 <- const 0x1            1: s2 <- const 0x1
    ///   2: s3 <- s0 Add s2 & 0xffff   2: s3 <- s0 Add s2 & 0xffff
    ///   3: s4 <- frame[s3]            3: s4 <- frame[s3]
    ///   4: s5 <- {s1, s4:u8}     =>   4: s5 <- {frame[s0], frame[s0+1 & 0xffff]:u8}
    ///                                    // 0-3 die when otherwise unread
    /// ```
    FusePairs,
    /// Loop-invariant load motion: in a pause-free, single-entry loop,
    /// loads of registers/arrays the loop never writes (and of input
    /// signals, which only change at pauses) are hoisted once into the
    /// loop's fall-through predecessor, landing in *pinned* scratch
    /// slots above every region's own slot range.
    ///
    /// ```text
    ///   head:                     pred:  ...
    ///     s1 <- var len             s64 <- var len    // pinned, once
    ///     s2 <- s0 Lt s1          head:
    ///     brz s2 -> exit            s1 <- s64
    ///   body: ...            =>     s2 <- s0 Lt s1
    ///     jmp -> head               brz s2 -> exit
    ///                             body: ...
    ///                               jmp -> head
    /// ```
    LoopInvLoad,
    /// Rewrite uses of `CopyS`/`CopyW` destinations to their sources
    /// (the copies themselves die in [`Pass::DeadScratch`]).
    CopyProp,
    /// Merge chained slice/resize ops — `(x >> a & m1) >> b & m2` folds
    /// to one shift-and-mask — the coalescing that makes byte-field
    /// access over `Resize`/`Slice` towers cheap.
    Coalesce,
    /// Remove producer ops whose destination slot is never read.
    /// Pinned slots (hoisted by [`Pass::LoopInvLoad`]) are read from
    /// *other* regions, so their defining loads are liveness roots.
    DeadScratch,
}

/// The default pipeline, in order. `Simplify` runs right after
/// `ConstFold` so identity arithmetic on array indices collapses
/// *before* `ArrayStrength`/`RedundantLoad` try to unify accesses by
/// index value; `Cse` runs after `RedundantLoad` so loads it unified
/// feed value numbering as one slot; `FusePairs` runs *after*
/// `LoopInvLoad`, so a loop-invariant load hoists out of its loop (one
/// read, ever) rather than fusing into a concat that would re-read it
/// every iteration.
pub fn default_pipeline() -> &'static [Pass] {
    &[
        Pass::ConstFold,
        Pass::Simplify,
        Pass::ArrayStrength,
        Pass::RedundantLoad,
        Pass::Cse,
        Pass::LoopInvLoad,
        Pass::FusePairs,
        Pass::CopyProp,
        Pass::Coalesce,
        Pass::DeadScratch,
    ]
}

/// The statement-local subset (the PR 5 pipeline): never moves or
/// merges work across source statements, useful as a differential
/// baseline for the cross-statement passes.
pub fn statement_pipeline() -> &'static [Pass] {
    &[
        Pass::ConstFold,
        Pass::CopyProp,
        Pass::Coalesce,
        Pass::DeadScratch,
    ]
}

/// Parses an `EMU_CPU_PASSES`-style pipeline spec: `default` (or
/// empty), `none`, `stmt`, or a comma-separated list of pass names
/// (`const_fold`, `simplify`, `array_strength`, `redundant_load`,
/// `cse`, `fuse_pairs`, `loop_inv_load`, `copy_prop`, `coalesce`,
/// `dead_scratch`).
pub fn parse_passes(spec: &str) -> Result<Vec<Pass>, String> {
    match spec.trim() {
        "" | "default" => return Ok(default_pipeline().to_vec()),
        "none" => return Ok(Vec::new()),
        "stmt" => return Ok(statement_pipeline().to_vec()),
        _ => {}
    }
    spec.split(',')
        .map(|name| match name.trim() {
            "const_fold" => Ok(Pass::ConstFold),
            "simplify" => Ok(Pass::Simplify),
            "array_strength" => Ok(Pass::ArrayStrength),
            "redundant_load" => Ok(Pass::RedundantLoad),
            "cse" => Ok(Pass::Cse),
            "fuse_pairs" => Ok(Pass::FusePairs),
            "loop_inv_load" => Ok(Pass::LoopInvLoad),
            "copy_prop" => Ok(Pass::CopyProp),
            "coalesce" => Ok(Pass::Coalesce),
            "dead_scratch" => Ok(Pass::DeadScratch),
            other => Err(format!("unknown pass `{other}`")),
        })
        .collect()
}

/// The pipeline selected by the `EMU_CPU_PASSES` environment variable,
/// falling back to [`default_pipeline`] when unset. Panics on an
/// unrecognized value — a typo'd pipeline silently falling back would
/// invalidate a differential run.
pub fn env_pipeline() -> Vec<Pass> {
    match std::env::var("EMU_CPU_PASSES") {
        Ok(v) => parse_passes(&v).unwrap_or_else(|e| {
            panic!(
                "EMU_CPU_PASSES: {e} (accepted: `none`, `default`, `stmt`, \
                 or a comma-separated pass list)"
            )
        }),
        Err(_) => default_pipeline().to_vec(),
    }
}

/// Merges runs of consecutive statement regions into widened regions,
/// per the visibility rules in the module docs: a run breaks at branch
/// targets (which must keep their entry points) and after any region
/// ending in `pause`/`ext`/`jmp`/`halt`. Merged tails are drained into
/// their head (left as empty vecs so source-op indexing survives), and
/// their slots are renumbered past the head's so the merged region is
/// again written-once-before-read.
pub(crate) fn widen_regions(regions: &mut [Vec<MOp>]) {
    let n = regions.len();
    let mut is_target = vec![false; n + 1];
    for r in regions.iter() {
        for m in r {
            if let MOp::BranchZ { target, .. } | MOp::Jmp { target } = m {
                is_target[*target as usize] = true;
            }
        }
    }
    let mut head = 0usize;
    let mut off = (0u32, 0u32);
    for i in 0..n {
        let barrier_after = matches!(
            regions[i].last(),
            None | Some(MOp::PauseOp | MOp::ExtOp { .. } | MOp::Jmp { .. } | MOp::HaltOp)
        );
        if i == head || is_target[i] {
            head = i;
            off = region_slots(&regions[i]);
        } else {
            let (cs, cw) = region_slots(&regions[i]);
            let mut moved = std::mem::take(&mut regions[i]);
            for m in &mut moved {
                if let Some((d, wide)) = m.dst_mut() {
                    *d += if wide { off.1 } else { off.0 };
                }
                m.uses_mut(&mut |s, wide| {
                    *s += if wide { off.1 } else { off.0 };
                });
            }
            regions[head].extend(moved);
            off.0 += cs;
            off.1 += cw;
        }
        if barrier_after {
            head = i + 1;
        }
    }
}

/// Slot-file sizes (small, wide) used by one region.
fn region_slots(region: &[MOp]) -> (u32, u32) {
    let (mut ns, mut nw) = (0u32, 0u32);
    for m in region {
        let mut bump = |s: Slot, wide: bool| {
            let n = if wide { &mut nw } else { &mut ns };
            *n = (*n).max(s + 1);
        };
        if let Some((d, wide)) = m.dst() {
            bump(d, wide);
        }
        m.uses(&mut |s, w| bump(s, w));
    }
    (ns, nw)
}

/// Allocator for *pinned* scratch slots: slots above every region's own
/// range, used by [`Pass::LoopInvLoad`] to carry hoisted values across
/// region boundaries. [`Pass::DeadScratch`] treats definitions of
/// pinned slots as liveness roots, since their readers live in other
/// regions.
struct Pins {
    base_s: Slot,
    base_w: Slot,
    next_s: Slot,
    next_w: Slot,
}

impl Pins {
    fn over(regions: &[Vec<MOp>]) -> Pins {
        let (mut s, mut w) = (0u32, 0u32);
        for r in regions {
            let (a, b) = region_slots(r);
            s = s.max(a);
            w = w.max(b);
        }
        Pins {
            base_s: s,
            base_w: w,
            next_s: s,
            next_w: w,
        }
    }

    fn alloc(&mut self, wide: bool) -> Slot {
        let n = if wide {
            &mut self.next_w
        } else {
            &mut self.next_s
        };
        let s = *n;
        *n += 1;
        s
    }
}

/// Runs `passes` over the (widened) regions, in order.
pub fn run(regions: &mut [Vec<MOp>], passes: &[Pass], prog: &Program) {
    let mut pins = Pins::over(regions);
    for pass in passes {
        if *pass == Pass::LoopInvLoad {
            loop_inv_load(regions, &mut pins);
            continue;
        }
        for region in regions.iter_mut() {
            match pass {
                Pass::ConstFold => const_fold(region),
                Pass::Simplify => simplify(region),
                Pass::ArrayStrength => array_strength(region, prog),
                Pass::RedundantLoad => redundant_load(region, prog),
                Pass::Cse => cse(region),
                Pass::FusePairs => fuse_pairs(region),
                Pass::CopyProp => copy_prop(region),
                Pass::Coalesce => coalesce(region),
                Pass::DeadScratch => dead_scratch(region, &pins),
                Pass::LoopInvLoad => unreachable!("handled above"),
            }
        }
    }
}

/// Constant folding: forward pass tracking slots with known values.
fn const_fold(region: &mut [MOp]) {
    let mut sc: HashMap<Slot, u64> = HashMap::new();
    let mut wc: HashMap<Slot, Bits> = HashMap::new();
    for op in region.iter_mut() {
        let s = |slot: &Slot| sc.get(slot).copied();
        let w = |slot: &Slot| wc.get(slot);
        let folded: Option<MOp> = match &*op {
            MOp::CopyS { dst, a } => s(a).map(|v| MOp::ConstS { dst: *dst, v }),
            MOp::CopyW { dst, a } => w(a).map(|v| MOp::ConstW {
                dst: *dst,
                v: v.clone(),
            }),
            MOp::Widen { dst, a, w: width } => s(a).map(|v| MOp::ConstW {
                dst: *dst,
                v: Bits::from_u64(v, *width),
            }),
            MOp::Narrow { dst, a, mask } => w(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: v.to_u64() & mask,
            }),
            MOp::MaskS { dst, a, mask } => s(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: v & mask,
            }),
            MOp::ResizeW { dst, a, w: width } => w(a).map(|v| MOp::ConstW {
                dst: *dst,
                v: v.resize(*width),
            }),
            MOp::NotS { dst, a, mask } => s(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: !v & mask,
            }),
            MOp::NegS { dst, a, mask } => s(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: v.wrapping_neg() & mask,
            }),
            MOp::RedOrS { dst, a } => s(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: u64::from(v != 0),
            }),
            MOp::NotW { dst, a } => w(a).map(|v| MOp::ConstW {
                dst: *dst,
                v: v.not(),
            }),
            MOp::NegW { dst, a } => w(a).map(|v| MOp::ConstW {
                dst: *dst,
                v: Bits::zero(v.width()).wrapping_sub(v),
            }),
            MOp::RedOrW { dst, a } => w(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: u64::from(!v.is_zero()),
            }),
            MOp::BinS {
                dst,
                op,
                a,
                b,
                mask,
            } => s(a).zip(s(b)).map(|(x, y)| MOp::ConstS {
                dst: *dst,
                v: bin_s(*op, x, y, *mask),
            }),
            MOp::CmpS { dst, op, a, b } => s(a).zip(s(b)).map(|(x, y)| MOp::ConstS {
                dst: *dst,
                v: cmp_s(*op, x, y),
            }),
            MOp::ShlS { dst, a, b, mask } => s(a).zip(s(b)).map(|(x, n)| MOp::ConstS {
                dst: *dst,
                v: shl_s(x, n, *mask),
            }),
            MOp::ShrS { dst, a, b } => s(a).zip(s(b)).map(|(x, n)| MOp::ConstS {
                dst: *dst,
                v: shr_s(x, n),
            }),
            MOp::ConcatS { dst, a, b, bw } => s(a).zip(s(b)).map(|(x, y)| MOp::ConstS {
                dst: *dst,
                v: (x << bw) | y,
            }),
            MOp::SliceS { dst, a, lo, mask } => s(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: (v >> lo) & mask,
            }),
            MOp::SliceWS { dst, a, lo, mask } => w(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: v.shr(u32::from(*lo)).to_u64() & mask,
            }),
            MOp::SliceW { dst, a, hi, lo } => w(a).map(|v| MOp::ConstW {
                dst: *dst,
                v: v.slice(*hi, *lo),
            }),
            MOp::BinW { dst, op, a, b } => w(a).zip(w(b)).map(|(x, y)| MOp::ConstW {
                dst: *dst,
                v: bin_w(*op, x, y),
            }),
            MOp::CmpW { dst, op, a, b } => w(a).zip(w(b)).map(|(x, y)| MOp::ConstS {
                dst: *dst,
                v: cmp_w(*op, x, y),
            }),
            MOp::ShlW { dst, a, b } => w(a).zip(s(b).as_ref()).map(|(x, n)| MOp::ConstW {
                dst: *dst,
                v: x.shl(shift_amount(*n)),
            }),
            MOp::ShrW { dst, a, b } => w(a).zip(s(b).as_ref()).map(|(x, n)| MOp::ConstW {
                dst: *dst,
                v: x.shr(shift_amount(*n)),
            }),
            MOp::ConcatW { dst, a, b } => w(a).zip(w(b)).map(|(x, y)| MOp::ConstW {
                dst: *dst,
                v: x.concat(y),
            }),
            MOp::MuxS { dst, c, t, e } => {
                s(c).zip(s(t).zip(s(e))).map(|(cv, (tv, ev))| MOp::ConstS {
                    dst: *dst,
                    v: if cv != 0 { tv } else { ev },
                })
            }
            MOp::MuxW { dst, c, t, e } => {
                s(c).zip(w(t).zip(w(e))).map(|(cv, (tv, ev))| MOp::ConstW {
                    dst: *dst,
                    v: if cv != 0 { tv.clone() } else { ev.clone() },
                })
            }
            _ => None,
        };
        if let Some(f) = folded {
            *op = f;
        }
        match op {
            MOp::ConstS { dst, v } => {
                sc.insert(*dst, *v);
            }
            MOp::ConstW { dst, v } => {
                wc.insert(*dst, v.clone());
            }
            _ => {}
        }
    }
}

/// Algebraic simplification over the small scratch file (see
/// [`Pass::Simplify`]). Forward scan tracking known constants, copy
/// sources, and possibly-set-bit bounds; every rewrite reproduces the
/// op's exact masking semantics, so a fold can never disagree with
/// execution: an identity operand yields a bare copy only when the
/// surviving operand provably fits the result mask, and a `MaskS`
/// otherwise.
fn simplify(region: &mut [MOp]) {
    let mut consts: HashMap<Slot, u64> = HashMap::new();
    let mut copies: HashMap<Slot, Slot> = HashMap::new();
    let mut nz: HashMap<Slot, u64> = HashMap::new();
    fn resolve(copies: &HashMap<Slot, Slot>, s: Slot) -> Slot {
        copies.get(&s).copied().unwrap_or(s)
    }
    // `(a <op> identity) & mask` is `a & mask`: a copy when `a` provably
    // fits the mask, the explicit mask otherwise.
    fn copy_masked(dst: Slot, a: Slot, mask: u64, nz: &HashMap<Slot, u64>) -> MOp {
        if nz.get(&a).copied().unwrap_or(u64::MAX) & !mask == 0 {
            MOp::CopyS { dst, a }
        } else {
            MOp::MaskS { dst, a, mask }
        }
    }

    for op in region.iter_mut() {
        let rep: Option<MOp> = match &*op {
            MOp::BinS {
                dst,
                op: bop,
                a,
                b,
                mask,
            } => {
                let (ca, cb) = (consts.get(a).copied(), consts.get(b).copied());
                let same = resolve(&copies, *a) == resolve(&copies, *b);
                match bop {
                    BinOp::Add | BinOp::Or if cb == Some(0) => {
                        Some(copy_masked(*dst, *a, *mask, &nz))
                    }
                    BinOp::Add | BinOp::Or if ca == Some(0) => {
                        Some(copy_masked(*dst, *b, *mask, &nz))
                    }
                    BinOp::Xor | BinOp::Sub if same => Some(MOp::ConstS { dst: *dst, v: 0 }),
                    BinOp::Xor | BinOp::Sub if cb == Some(0) => {
                        Some(copy_masked(*dst, *a, *mask, &nz))
                    }
                    BinOp::Xor if ca == Some(0) => Some(copy_masked(*dst, *b, *mask, &nz)),
                    BinOp::Mul | BinOp::And if ca == Some(0) || cb == Some(0) => {
                        Some(MOp::ConstS { dst: *dst, v: 0 })
                    }
                    BinOp::Mul if cb == Some(1) => Some(copy_masked(*dst, *a, *mask, &nz)),
                    BinOp::Mul if ca == Some(1) => Some(copy_masked(*dst, *b, *mask, &nz)),
                    // `(a & k) & mask` is `a & mask` when `k` covers it.
                    BinOp::And if cb.is_some_and(|k| k & mask == *mask) => {
                        Some(copy_masked(*dst, *a, *mask, &nz))
                    }
                    BinOp::And if ca.is_some_and(|k| k & mask == *mask) => {
                        Some(copy_masked(*dst, *b, *mask, &nz))
                    }
                    _ => None,
                }
            }
            MOp::ShlS { dst, a, b, mask } if consts.get(b) == Some(&0) => {
                Some(copy_masked(*dst, *a, *mask, &nz))
            }
            MOp::ShrS { dst, a, b } if consts.get(b) == Some(&0) => {
                Some(MOp::CopyS { dst: *dst, a: *a })
            }
            MOp::MaskS { dst, a, mask } if nz.get(a).copied().unwrap_or(u64::MAX) & !mask == 0 => {
                Some(MOp::CopyS { dst: *dst, a: *a })
            }
            MOp::MuxS { dst, c, t, e } => consts.get(c).map(|&cv| MOp::CopyS {
                dst: *dst,
                a: if cv != 0 { *t } else { *e },
            }),
            // Comparing a slot against itself is the same for any
            // value, so evaluate the op on an arbitrary equal pair.
            MOp::CmpS { dst, op: cop, a, b } if resolve(&copies, *a) == resolve(&copies, *b) => {
                Some(MOp::ConstS {
                    dst: *dst,
                    v: cmp_s(*cop, 0, 0),
                })
            }
            _ => None,
        };
        if let Some(r) = rep {
            *op = r;
        }

        if let Some((d, false)) = op.dst() {
            nz.insert(d, small_value_mask(op, &nz, &consts));
        }
        match &*op {
            MOp::ConstS { dst, v } => {
                consts.insert(*dst, *v);
            }
            MOp::CopyS { dst, a } => {
                let src = resolve(&copies, *a);
                copies.insert(*dst, src);
                if let Some(&v) = consts.get(&src) {
                    consts.insert(*dst, v);
                }
            }
            _ => {}
        }
    }
}

/// Array-access strength reduction: loads and stores with constant
/// in-range indices become direct `LdArrCS`/`LdArrCW`/`StArrCS`/
/// `StArrCW` (bounds discharged at compile time); an out-of-range
/// constant load folds to the architectural zero. Out-of-range constant
/// stores stay dynamic: they are terminals, so they must keep ticking
/// the op budget, and the executor's bounds check drops them exactly as
/// before.
fn array_strength(region: &mut [MOp], prog: &Program) {
    let mut consts: HashMap<Slot, u64> = HashMap::new();
    let in_range = |prog: &Program, arr: u32, c: u64| {
        c < arr_len(prog, arr) as u64 && c <= u64::from(u32::MAX)
    };
    for op in region.iter_mut() {
        let rep = match &*op {
            MOp::LdArrS { dst, arr, idx } => consts.get(idx).map(|&c| {
                if in_range(prog, *arr, c) {
                    MOp::LdArrCS {
                        dst: *dst,
                        arr: *arr,
                        idx: c as u32,
                    }
                } else {
                    MOp::ConstS { dst: *dst, v: 0 }
                }
            }),
            MOp::LdArrW { dst, arr, idx, w } => consts.get(idx).map(|&c| {
                if in_range(prog, *arr, c) {
                    MOp::LdArrCW {
                        dst: *dst,
                        arr: *arr,
                        idx: c as u32,
                    }
                } else {
                    MOp::ConstW {
                        dst: *dst,
                        v: Bits::zero(*w),
                    }
                }
            }),
            MOp::StArrS { arr, idx, a, w } => match consts.get(idx) {
                Some(&c) if in_range(prog, *arr, c) => Some(MOp::StArrCS {
                    arr: *arr,
                    idx: c as u32,
                    a: *a,
                    w: *w,
                }),
                _ => None,
            },
            MOp::StArrW { arr, idx, a, w } => match consts.get(idx) {
                Some(&c) if in_range(prog, *arr, c) => Some(MOp::StArrCW {
                    arr: *arr,
                    idx: c as u32,
                    a: *a,
                    w: *w,
                }),
                _ => None,
            },
            _ => None,
        };
        if let Some(r) = rep {
            *op = r;
        }
        if let MOp::ConstS { dst, v } = op {
            consts.insert(*dst, *v);
        }
    }
}

fn arr_len(prog: &Program, arr: u32) -> usize {
    prog.arrays().get(arr as usize).map_or(0, |d| d.len)
}

/// How an array-load caches in the availability maps: by constant index
/// value, or by the (write-once) slot holding a dynamic index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum IdxKey {
    Const(u32),
    Dyn(Slot),
}

/// Redundant-load/store elimination within one widened region (see
/// [`Pass::RedundantLoad`]). Forward scan over availability maps; a
/// store invalidates exactly the locations it can alias, then forwards
/// its own value when it provably fits the declared width (stores
/// truncate, so forwarding an over-wide slot would disagree with a
/// reload). `pause`/`ext` hand the environment a mutable view of all
/// machine state and clear everything.
fn redundant_load(region: &mut [MOp], prog: &Program) {
    let mut var_s: HashMap<u32, Slot> = HashMap::new();
    let mut var_w: HashMap<u32, Slot> = HashMap::new();
    let mut sig_s: HashMap<(u32, bool), Slot> = HashMap::new();
    let mut sig_w: HashMap<(u32, bool), Slot> = HashMap::new();
    let mut arr_s: HashMap<(u32, IdxKey), Slot> = HashMap::new();
    let mut arr_w: HashMap<(u32, IdxKey), Slot> = HashMap::new();
    // Known possibly-set bits per small slot (for store forwarding) and
    // known constants / copy sources (for index resolution).
    let mut nz: HashMap<Slot, u64> = HashMap::new();
    let mut consts: HashMap<Slot, u64> = HashMap::new();
    let mut copies: HashMap<Slot, Slot> = HashMap::new();
    fn resolve(copies: &HashMap<Slot, Slot>, s: Slot) -> Slot {
        copies.get(&s).copied().unwrap_or(s)
    }
    fn fits(nz: &HashMap<Slot, u64>, a: Slot, w: u16) -> bool {
        nz.get(&a).copied().unwrap_or(u64::MAX) & !mask_of(w) == 0
    }

    for op in region.iter_mut() {
        // 1. Replace loads whose value is already in a slot.
        let rep = match &*op {
            MOp::LdVarS { dst, var } => var_s.get(var).map(|&a| MOp::CopyS { dst: *dst, a }),
            MOp::LdVarW { dst, var } => var_w.get(var).map(|&a| MOp::CopyW { dst: *dst, a }),
            MOp::LdSigS { dst, sig, out } => sig_s
                .get(&(*sig, *out))
                .map(|&a| MOp::CopyS { dst: *dst, a }),
            MOp::LdSigW { dst, sig, out } => sig_w
                .get(&(*sig, *out))
                .map(|&a| MOp::CopyW { dst: *dst, a }),
            MOp::LdArrCS { dst, arr, idx } => arr_s
                .get(&(*arr, IdxKey::Const(*idx)))
                .map(|&a| MOp::CopyS { dst: *dst, a }),
            MOp::LdArrCW { dst, arr, idx } => arr_w
                .get(&(*arr, IdxKey::Const(*idx)))
                .map(|&a| MOp::CopyW { dst: *dst, a }),
            MOp::LdArrS { dst, arr, idx } => arr_s
                .get(&(*arr, IdxKey::Dyn(resolve(&copies, *idx))))
                .map(|&a| MOp::CopyS { dst: *dst, a }),
            MOp::LdArrW { dst, arr, idx, .. } => arr_w
                .get(&(*arr, IdxKey::Dyn(resolve(&copies, *idx))))
                .map(|&a| MOp::CopyW { dst: *dst, a }),
            _ => None,
        };
        if let Some(r) = rep {
            *op = r;
        }

        // 2. Value bookkeeping for the (possibly rewritten) op.
        if let Some((d, false)) = op.dst() {
            let m = small_value_mask(op, &nz, &consts);
            nz.insert(d, m);
        }
        match &*op {
            MOp::ConstS { dst, v } => {
                consts.insert(*dst, *v);
            }
            MOp::CopyS { dst, a } => {
                let src = resolve(&copies, *a);
                copies.insert(*dst, src);
                if let Some(&v) = consts.get(&src) {
                    consts.insert(*dst, v);
                }
            }
            _ => {}
        }

        // 3. Availability and invalidation.
        match &*op {
            MOp::LdVarS { dst, var } => {
                var_s.insert(*var, *dst);
            }
            MOp::LdVarW { dst, var } => {
                var_w.insert(*var, *dst);
            }
            MOp::LdSigS { dst, sig, out } => {
                sig_s.insert((*sig, *out), *dst);
            }
            MOp::LdSigW { dst, sig, out } => {
                sig_w.insert((*sig, *out), *dst);
            }
            MOp::LdArrCS { dst, arr, idx } => {
                arr_s.insert((*arr, IdxKey::Const(*idx)), *dst);
            }
            MOp::LdArrCW { dst, arr, idx } => {
                arr_w.insert((*arr, IdxKey::Const(*idx)), *dst);
            }
            MOp::LdArrS { dst, arr, idx } => {
                arr_s.insert((*arr, IdxKey::Dyn(resolve(&copies, *idx))), *dst);
            }
            MOp::LdArrW { dst, arr, idx, .. } => {
                arr_w.insert((*arr, IdxKey::Dyn(resolve(&copies, *idx))), *dst);
            }
            MOp::StVarS { var, a, w } => {
                var_s.remove(var);
                var_w.remove(var);
                if fits(&nz, *a, *w) {
                    var_s.insert(*var, *a);
                }
            }
            MOp::StVarW { var, .. } => {
                var_s.remove(var);
                var_w.remove(var);
            }
            MOp::StSigS { sig, a, w } => {
                sig_s.remove(&(*sig, true));
                sig_w.remove(&(*sig, true));
                if fits(&nz, *a, *w) {
                    sig_s.insert((*sig, true), *a);
                }
            }
            MOp::StSigW { sig, .. } => {
                sig_s.remove(&(*sig, true));
                sig_w.remove(&(*sig, true));
            }
            MOp::StArrS { arr, idx, a, w } => {
                match consts.get(&resolve(&copies, *idx)) {
                    Some(&c) if c < arr_len(prog, *arr) as u64 && c <= u64::from(u32::MAX) => {
                        invalidate_arr(&mut arr_s, &mut arr_w, *arr, Some(c as u32));
                        if fits(&nz, *a, *w) {
                            arr_s.insert((*arr, IdxKey::Const(c as u32)), *a);
                        }
                    }
                    // Constant out-of-range store: the executor drops
                    // it, so nothing it could alias changes.
                    Some(_) => {}
                    None => invalidate_arr(&mut arr_s, &mut arr_w, *arr, None),
                }
            }
            MOp::StArrW { arr, idx, .. } => match consts.get(&resolve(&copies, *idx)) {
                Some(&c) if c < arr_len(prog, *arr) as u64 && c <= u64::from(u32::MAX) => {
                    invalidate_arr(&mut arr_s, &mut arr_w, *arr, Some(c as u32));
                }
                Some(_) => {}
                None => invalidate_arr(&mut arr_s, &mut arr_w, *arr, None),
            },
            // Const-index stores (from ArrayStrength) are in range by
            // construction: invalidate and forward like an in-range
            // StArrS/StArrW with a known index.
            MOp::StArrCS { arr, idx, a, w } => {
                invalidate_arr(&mut arr_s, &mut arr_w, *arr, Some(*idx));
                if fits(&nz, *a, *w) {
                    arr_s.insert((*arr, IdxKey::Const(*idx)), *a);
                }
            }
            MOp::StArrCW { arr, idx, .. } => {
                invalidate_arr(&mut arr_s, &mut arr_w, *arr, Some(*idx));
            }
            MOp::PauseOp | MOp::ExtOp { .. } => {
                var_s.clear();
                var_w.clear();
                sig_s.clear();
                sig_w.clear();
                arr_s.clear();
                arr_w.clear();
            }
            _ => {}
        }
    }
}

/// Drops availability entries a store to `arr` may alias: with a known
/// in-range index `Some(c)`, every dynamic-index entry plus the entry
/// for `c` itself (other constant indices cannot alias); with an
/// unknown index, everything for the array.
fn invalidate_arr(
    arr_s: &mut HashMap<(u32, IdxKey), Slot>,
    arr_w: &mut HashMap<(u32, IdxKey), Slot>,
    arr: u32,
    known_idx: Option<u32>,
) {
    let stale = |k: &(u32, IdxKey)| {
        k.0 == arr
            && match (known_idx, k.1) {
                (Some(c), IdxKey::Const(c2)) => c2 == c,
                (Some(_), IdxKey::Dyn(_)) | (None, _) => true,
            }
    };
    arr_s.retain(|k, _| !stale(k));
    arr_w.retain(|k, _| !stale(k));
}

/// An upper bound on the bits a small-slot value can have set, used to
/// decide whether store forwarding is exact. Loads get `u64::MAX`
/// (drivers may poke machine state between regions, so declared widths
/// are not trusted for values *read* from state — only for values the
/// region computes itself).
fn small_value_mask(op: &MOp, nz: &HashMap<Slot, u64>, consts: &HashMap<Slot, u64>) -> u64 {
    let g = |s: &Slot| nz.get(s).copied().unwrap_or(u64::MAX);
    match op {
        MOp::ConstS { v, .. } => *v,
        MOp::CopyS { a, .. } => g(a),
        MOp::MaskS { a, mask, .. } => g(a) & mask,
        MOp::Narrow { mask, .. }
        | MOp::NotS { mask, .. }
        | MOp::NegS { mask, .. }
        | MOp::ShlS { mask, .. }
        | MOp::SliceS { mask, .. }
        | MOp::SliceWS { mask, .. } => *mask,
        MOp::RedOrS { .. } | MOp::RedOrW { .. } | MOp::CmpS { .. } | MOp::CmpW { .. } => 1,
        MOp::BinS {
            op: BinOp::And,
            a,
            b,
            ..
        } => g(a) & g(b),
        MOp::BinS {
            op: BinOp::Or | BinOp::Xor,
            a,
            b,
            ..
        } => g(a) | g(b),
        MOp::BinS { mask, .. } => *mask,
        MOp::ShrS { a, b, .. } => match consts.get(b) {
            Some(&n) => shr_s(g(a), n),
            None => smear_down(g(a)),
        },
        MOp::ConcatS { a, b, bw, .. } => shl_s(g(a), u64::from(*bw), u64::MAX) | g(b),
        MOp::MuxS { t, e, .. } => g(t) | g(e),
        _ => u64::MAX,
    }
}

/// All bits at or below the highest set bit of `m` (the bound for a
/// right shift by an unknown amount).
fn smear_down(m: u64) -> u64 {
    if m == 0 {
        0
    } else {
        u64::MAX >> m.leading_zeros()
    }
}

/// Operand order is irrelevant for these, so [`Pass::Cse`] sorts the
/// copy-resolved operand pair into a canonical order before keying.
fn commutes(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
    )
}

/// Local value numbering within one widened region (see [`Pass::Cse`]).
/// Forward scan: each pure op is keyed on a kind discriminant plus its
/// copy-resolved operands and immediates; a key hit rewrites the op to
/// a copy of the first computation's slot. Sound across interior
/// stores, labels, and branch exits because slots are written once
/// before use and an interior `BranchZ` only ever *leaves* the region —
/// any op that executes is preceded by every earlier op in the region.
/// Loads and `ConstW` (whose `Bits` payload has no cheap key) are left
/// alone.
fn cse(region: &mut [MOp]) {
    // kind discriminant + up to four packed operand/immediate words.
    type Key = (u8, u64, u64, u64, u64);
    let mut avail: HashMap<Key, Slot> = HashMap::new();
    let mut cs: HashMap<Slot, Slot> = HashMap::new();
    let mut cw: HashMap<Slot, Slot> = HashMap::new();
    for op in region.iter_mut() {
        let rs = |s: &Slot| u64::from(cs.get(s).copied().unwrap_or(*s));
        let rw = |s: &Slot| u64::from(cw.get(s).copied().unwrap_or(*s));
        // (key, dst, destination-is-wide)
        let keyed: Option<(Key, Slot, bool)> = match &*op {
            MOp::ConstS { dst, v } => Some(((0, *v, 0, 0, 0), *dst, false)),
            MOp::Widen { dst, a, w } => Some(((1, rs(a), u64::from(*w), 0, 0), *dst, true)),
            MOp::Narrow { dst, a, mask } => Some(((2, rw(a), *mask, 0, 0), *dst, false)),
            MOp::MaskS { dst, a, mask } => Some(((3, rs(a), *mask, 0, 0), *dst, false)),
            MOp::ResizeW { dst, a, w } => Some(((4, rw(a), u64::from(*w), 0, 0), *dst, true)),
            MOp::NotS { dst, a, mask } => Some(((5, rs(a), *mask, 0, 0), *dst, false)),
            MOp::NegS { dst, a, mask } => Some(((6, rs(a), *mask, 0, 0), *dst, false)),
            MOp::RedOrS { dst, a } => Some(((7, rs(a), 0, 0, 0), *dst, false)),
            MOp::NotW { dst, a } => Some(((8, rw(a), 0, 0, 0), *dst, true)),
            MOp::NegW { dst, a } => Some(((9, rw(a), 0, 0, 0), *dst, true)),
            MOp::RedOrW { dst, a } => Some(((10, rw(a), 0, 0, 0), *dst, false)),
            MOp::BinS {
                dst,
                op: bop,
                a,
                b,
                mask,
            } => {
                let (mut x, mut y) = (rs(a), rs(b));
                if commutes(*bop) && x > y {
                    std::mem::swap(&mut x, &mut y);
                }
                Some(((11, *bop as u64, x, y, *mask), *dst, false))
            }
            MOp::CmpS { dst, op: cop, a, b } => {
                Some(((12, *cop as u64, rs(a), rs(b), 0), *dst, false))
            }
            MOp::ShlS { dst, a, b, mask } => Some(((13, rs(a), rs(b), *mask, 0), *dst, false)),
            MOp::ShrS { dst, a, b } => Some(((14, rs(a), rs(b), 0, 0), *dst, false)),
            MOp::ConcatS { dst, a, b, bw } => {
                Some(((15, rs(a), rs(b), u64::from(*bw), 0), *dst, false))
            }
            MOp::SliceS { dst, a, lo, mask } => {
                Some(((16, rs(a), u64::from(*lo), *mask, 0), *dst, false))
            }
            MOp::SliceWS { dst, a, lo, mask } => {
                Some(((17, rw(a), u64::from(*lo), *mask, 0), *dst, false))
            }
            MOp::SliceW { dst, a, hi, lo } => {
                Some(((18, rw(a), u64::from(*hi), u64::from(*lo), 0), *dst, true))
            }
            MOp::BinW { dst, op: bop, a, b } => {
                let (mut x, mut y) = (rw(a), rw(b));
                if commutes(*bop) && x > y {
                    std::mem::swap(&mut x, &mut y);
                }
                Some(((19, *bop as u64, x, y, 0), *dst, true))
            }
            MOp::CmpW { dst, op: cop, a, b } => {
                Some(((20, *cop as u64, rw(a), rw(b), 0), *dst, false))
            }
            MOp::ShlW { dst, a, b } => Some(((21, rw(a), rs(b), 0, 0), *dst, true)),
            MOp::ShrW { dst, a, b } => Some(((22, rw(a), rs(b), 0, 0), *dst, true)),
            MOp::ConcatW { dst, a, b } => Some(((23, rw(a), rw(b), 0, 0), *dst, true)),
            MOp::MuxS { dst, c, t, e } => Some(((24, rs(c), rs(t), rs(e), 0), *dst, false)),
            MOp::MuxW { dst, c, t, e } => Some(((25, rs(c), rw(t), rw(e), 0), *dst, true)),
            _ => None,
        };
        if let Some((key, dst, wide)) = keyed {
            if let Some(&prev) = avail.get(&key) {
                *op = if wide {
                    MOp::CopyW { dst, a: prev }
                } else {
                    MOp::CopyS { dst, a: prev }
                };
            } else {
                avail.insert(key, dst);
            }
        }
        match &*op {
            MOp::CopyS { dst, a } => {
                let src = cs.get(a).copied().unwrap_or(*a);
                cs.insert(*dst, src);
            }
            MOp::CopyW { dst, a } => {
                let src = cw.get(a).copied().unwrap_or(*a);
                cw.insert(*dst, src);
            }
            _ => {}
        }
    }
}

/// Load-pair fusion (see [`Pass::FusePairs`]). Forward scan recording
/// the defining op of every small slot, known constants, and copy
/// sources; a `ConcatS` of two adjacent-element loads becomes the fused
/// pair read. Safety is re-read equivalence: the fused op samples both
/// elements at the concat site, so any store into the array (or a
/// pause/ext handing control to the environment, though those only ever
/// end a region) after the first of the two loads blocks the fusion.
fn fuse_pairs(region: &mut [MOp]) {
    let mut def: HashMap<Slot, usize> = HashMap::new();
    let mut consts: HashMap<Slot, u64> = HashMap::new();
    let mut copies: HashMap<Slot, Slot> = HashMap::new();
    // Latest op that may have changed an array's contents.
    let mut dirty: HashMap<u32, usize> = HashMap::new();
    let mut env_dirty: Option<usize> = None;
    fn resolve(copies: &HashMap<Slot, Slot>, s: Slot) -> Slot {
        copies.get(&s).copied().unwrap_or(s)
    }
    for p in 0..region.len() {
        let rep: Option<MOp> = if let MOp::ConcatS { dst, a, b, bw } = &region[p] {
            let pa = def.get(&resolve(&copies, *a)).copied();
            let pb = def.get(&resolve(&copies, *b)).copied();
            // No store into `arr` (nor env control) since `first`, so
            // the fused op's re-read sees the same element values.
            let clean = |arr: u32, first: usize| {
                dirty.get(&arr).is_none_or(|&s| s < first) && env_dirty.is_none_or(|s| s < first)
            };
            let pair = match (pa, pb) {
                (Some(pa), Some(pb)) => match (&region[pa], &region[pb]) {
                    (
                        MOp::LdArrCS {
                            arr: r1, idx: c1, ..
                        },
                        MOp::LdArrCS {
                            arr: r2, idx: c2, ..
                        },
                    ) if r1 == r2 && c1.checked_add(1) == Some(*c2) && clean(*r1, pa.min(pb)) => {
                        Some(MOp::LdArrPairCS {
                            dst: *dst,
                            arr: *r1,
                            idx: *c1,
                            bw: *bw,
                        })
                    }
                    (
                        MOp::LdArrS {
                            arr: r1, idx: i1, ..
                        },
                        MOp::LdArrS {
                            arr: r2, idx: i2, ..
                        },
                    ) if r1 == r2 && clean(*r1, pa.min(pb)) => {
                        // The low index must come from the very add
                        // that computed `(high index + 1) & mask`, and
                        // the high index from a masked offset of some
                        // base (`base & mask` or `(base + k) & mask`
                        // with the same mask), so the fused op can
                        // reproduce every wrap exactly.
                        let ri1 = resolve(&copies, *i1);
                        let ckonst = |s: &Slot| consts.get(&resolve(&copies, *s)).copied();
                        let low = match def.get(&resolve(&copies, *i2)).map(|&q| &region[q]) {
                            Some(MOp::BinS {
                                op: BinOp::Add,
                                a: x,
                                b: y,
                                mask,
                                ..
                            }) if (resolve(&copies, *x) == ri1 && ckonst(y) == Some(1))
                                || (resolve(&copies, *y) == ri1 && ckonst(x) == Some(1)) =>
                            {
                                Some(*mask)
                            }
                            _ => None,
                        };
                        low.and_then(|mask| {
                            let base_off = match def.get(&ri1).map(|&q| &region[q]) {
                                Some(MOp::MaskS {
                                    a: base, mask: m1, ..
                                }) if *m1 == mask => Some((*base, 0)),
                                Some(MOp::BinS {
                                    op: BinOp::Add,
                                    a: u,
                                    b: v,
                                    mask: m1,
                                    ..
                                }) if *m1 == mask => match (ckonst(u), ckonst(v)) {
                                    (_, Some(k)) => Some((*u, k)),
                                    (Some(k), _) => Some((*v, k)),
                                    _ => None,
                                },
                                _ => None,
                            };
                            base_off.map(|(base, off)| MOp::LdArrPairS {
                                dst: *dst,
                                idx: base,
                                arr: *r1,
                                off,
                                mask,
                                bw: *bw,
                            })
                        })
                    }
                    _ => None,
                },
                _ => None,
            };
            // Tower step: the high part is an accumulated value, but
            // the low byte is still a load that can ride the concat.
            pair.or_else(|| match pb.map(|q| (&region[q], q)) {
                Some((MOp::LdArrCS { arr, idx, .. }, q)) if clean(*arr, q) => {
                    Some(MOp::ConcatLdCS {
                        dst: *dst,
                        a: *a,
                        arr: *arr,
                        idx: *idx,
                        bw: *bw,
                    })
                }
                Some((MOp::LdArrS { arr, idx, .. }, q)) if clean(*arr, q) => Some(MOp::ConcatLdS {
                    dst: *dst,
                    a: *a,
                    arr: *arr,
                    idx: *idx,
                    bw: *bw,
                }),
                _ => None,
            })
        } else {
            None
        };
        if let Some(r) = rep {
            region[p] = r;
        }
        match &region[p] {
            MOp::StArrS { arr, .. }
            | MOp::StArrW { arr, .. }
            | MOp::StArrCS { arr, .. }
            | MOp::StArrCW { arr, .. } => {
                dirty.insert(*arr, p);
            }
            MOp::PauseOp | MOp::ExtOp { .. } => env_dirty = Some(p),
            MOp::ConstS { dst, v } => {
                consts.insert(*dst, *v);
            }
            MOp::CopyS { dst, a } => {
                let src = resolve(&copies, *a);
                copies.insert(*dst, src);
                if let Some(&v) = consts.get(&src) {
                    consts.insert(*dst, v);
                }
            }
            _ => {}
        }
        if let Some((d, false)) = region[p].dst() {
            def.insert(d, p);
        }
    }
}

/// Loop-invariant load motion (see [`Pass::LoopInvLoad`]).
///
/// A loop is a region `j` ending in `Jmp -> h` with `h <= j` (the shape
/// `while`/`forever` lower to; the loop is entered by falling through
/// from its predecessor). It is eligible when regions `h..=j` contain
/// no `pause`/`ext`/`halt` (nothing inside lets the environment mutate
/// state), every branch into `h..=j` comes from inside (single entry),
/// and a fall-through predecessor region exists to host the hoisted
/// loads. Inner loops are processed first, so invariant loads chain
/// outward through nested loops.
fn loop_inv_load(regions: &mut [Vec<MOp>], pins: &mut Pins) {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut loops: Vec<(usize, usize)> = Vec::new();
    for (i, r) in regions.iter().enumerate() {
        for m in r {
            if let MOp::BranchZ { target, .. } | MOp::Jmp { target } = m {
                edges.push((i, *target as usize));
            }
        }
        if let Some(MOp::Jmp { target }) = r.last() {
            let h = *target as usize;
            if h <= i {
                loops.push((h, i));
            }
        }
    }

    'next_loop: for (h, j) in loops {
        for r in &regions[h..=j] {
            for m in r {
                if matches!(m, MOp::PauseOp | MOp::ExtOp { .. } | MOp::HaltOp) {
                    continue 'next_loop;
                }
            }
        }
        for &(src, t) in &edges {
            if (h..=j).contains(&t) && !(h..=j).contains(&src) {
                continue 'next_loop;
            }
        }
        // The hoist site: the region execution falls through into the
        // loop from. Hoisted loads are appended after its terminal, so
        // they run on the fall-through (loop entry) path only.
        let Some(p) = (0..h).rev().find(|&p| !regions[p].is_empty()) else {
            continue;
        };
        if matches!(regions[p].last(), Some(MOp::Jmp { .. } | MOp::HaltOp)) {
            continue;
        }

        let mut wvars: HashSet<u32> = HashSet::new();
        let mut wsigs: HashSet<u32> = HashSet::new();
        let mut warrs: HashSet<u32> = HashSet::new();
        for r in &regions[h..=j] {
            for m in r {
                match m {
                    MOp::StVarS { var, .. } | MOp::StVarW { var, .. } => {
                        wvars.insert(*var);
                    }
                    MOp::StSigS { sig, .. } | MOp::StSigW { sig, .. } => {
                        wsigs.insert(*sig);
                    }
                    MOp::StArrS { arr, .. }
                    | MOp::StArrW { arr, .. }
                    | MOp::StArrCS { arr, .. }
                    | MOp::StArrCW { arr, .. } => {
                        warrs.insert(*arr);
                    }
                    _ => {}
                }
            }
        }

        let mut pinned: HashMap<(u8, u32, u32, bool), Slot> = HashMap::new();
        let mut hoisted: Vec<MOp> = Vec::new();
        for r in regions[h..=j].iter_mut() {
            for m in r.iter_mut() {
                // Input signals only change at pauses, so any in-signal
                // read in a pause-free loop is invariant; everything
                // else must not be written inside the loop.
                let key = match &*m {
                    MOp::LdVarS { var, .. } if !wvars.contains(var) => (0u8, *var, 0u32, false),
                    MOp::LdVarW { var, .. } if !wvars.contains(var) => (0, *var, 0, true),
                    MOp::LdSigS { sig, out, .. } if !*out || !wsigs.contains(sig) => {
                        (1, *sig, u32::from(*out), false)
                    }
                    MOp::LdSigW { sig, out, .. } if !*out || !wsigs.contains(sig) => {
                        (1, *sig, u32::from(*out), true)
                    }
                    MOp::LdArrCS { arr, idx, .. } if !warrs.contains(arr) => (2, *arr, *idx, false),
                    MOp::LdArrCW { arr, idx, .. } if !warrs.contains(arr) => (2, *arr, *idx, true),
                    _ => continue,
                };
                let wide = key.3;
                let pin = *pinned.entry(key).or_insert_with(|| {
                    let s = pins.alloc(wide);
                    let mut hop = m.clone();
                    if let Some((d, _)) = hop.dst_mut() {
                        *d = s;
                    }
                    hoisted.push(hop);
                    s
                });
                let dst = m.dst().expect("loads define a slot").0;
                *m = if wide {
                    MOp::CopyW { dst, a: pin }
                } else {
                    MOp::CopyS { dst, a: pin }
                };
            }
        }
        regions[p].extend(hoisted);
    }
}

/// Copy propagation: substitute copy sources into later uses.
fn copy_prop(region: &mut [MOp]) {
    let mut map_s: HashMap<Slot, Slot> = HashMap::new();
    let mut map_w: HashMap<Slot, Slot> = HashMap::new();
    for op in region.iter_mut() {
        op.uses_mut(&mut |slot, wide| {
            let m = if wide { &map_w } else { &map_s };
            if let Some(&r) = m.get(slot) {
                *slot = r;
            }
        });
        // Record after rewriting, so chains resolve transitively.
        match op {
            MOp::CopyS { dst, a } => {
                map_s.insert(*dst, *a);
            }
            MOp::CopyW { dst, a } => {
                map_w.insert(*dst, *a);
            }
            _ => {}
        }
    }
}

/// Slice/resize coalescing over the small scratch file.
///
/// All four rewrites are pure shift-and-mask algebra on canonical `u64`
/// values; the summed shifts stay below 64 because each `lo` is bounded
/// by its source expression's width.
fn coalesce(region: &mut [MOp]) {
    let mut defs: HashMap<Slot, MOp> = HashMap::new();
    for op in region.iter_mut() {
        let rep = match &*op {
            MOp::MaskS { dst, a, mask } => match defs.get(a) {
                Some(MOp::MaskS {
                    a: a2, mask: m2, ..
                }) => Some(MOp::MaskS {
                    dst: *dst,
                    a: *a2,
                    mask: mask & m2,
                }),
                Some(MOp::SliceS {
                    a: a2,
                    lo,
                    mask: m2,
                    ..
                }) => Some(MOp::SliceS {
                    dst: *dst,
                    a: *a2,
                    lo: *lo,
                    mask: m2 & mask,
                }),
                _ => None,
            },
            MOp::SliceS { dst, a, lo, mask } => match defs.get(a) {
                Some(MOp::MaskS {
                    a: a2, mask: m2, ..
                }) => Some(MOp::SliceS {
                    dst: *dst,
                    a: *a2,
                    lo: *lo,
                    mask: (m2 >> lo) & mask,
                }),
                Some(MOp::SliceS {
                    a: a2,
                    lo: l2,
                    mask: m2,
                    ..
                }) => Some(MOp::SliceS {
                    dst: *dst,
                    a: *a2,
                    lo: lo + l2,
                    mask: (m2 >> lo) & mask,
                }),
                _ => None,
            },
            _ => None,
        };
        if let Some(r) = rep {
            *op = r;
        }
        if let Some((d, false)) = op.dst() {
            defs.insert(d, op.clone());
        }
    }
}

/// Dead scratch elimination: backward liveness within the region;
/// terminals are the roots, plus definitions of pinned slots, whose
/// readers live in other regions (the [`Pass::LoopInvLoad`] bodies).
fn dead_scratch(region: &mut Vec<MOp>, pins: &Pins) {
    let mut live: HashSet<(Slot, bool)> = HashSet::new();
    let mut keep = vec![true; region.len()];
    for i in (0..region.len()).rev() {
        let op = &region[i];
        let needed = match op.dst() {
            Some((d, wide)) => {
                live.contains(&(d, wide)) || d >= if wide { pins.base_w } else { pins.base_s }
            }
            None => true, // terminals
        };
        if !needed {
            keep[i] = false;
            continue;
        }
        op.uses(&mut |s, w| {
            live.insert((s, w));
        });
    }
    let mut it = keep.iter();
    region.retain(|_| *it.next().expect("keep mask sized to region"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_with_passes, mops_to_string, CompiledMachine, CompiledProgram};
    use crate::dsl::*;
    use crate::flat::flatten;
    use crate::interp::{Env, Machine, MachineState, NullEnv, NullObserver};
    use crate::program::{ArrayBacking, ProgramBuilder};

    /// Compiles `pb`'s program under the given passes.
    fn lower(pb: &ProgramBuilder, passes: &[Pass]) -> CompiledProgram {
        compile_with_passes(&flatten(&pb.clone().build().unwrap()).unwrap(), passes).unwrap()
    }

    fn listing(cp: &CompiledProgram) -> String {
        mops_to_string(&cp.threads[0], &cp.prog)
    }

    /// Runs the tree-walker and the fully optimized compiled backend
    /// for `cycles` and asserts identical register/array/signal state.
    fn assert_lockstep(pb: &ProgramBuilder, cycles: u64) {
        let flat = flatten(&pb.clone().build().unwrap()).unwrap();
        let mut tw = Machine::new(flat);
        tw.run_cycles(cycles, &mut NullEnv, &mut NullObserver)
            .unwrap();
        let mut cm = CompiledMachine::new(lower(pb, default_pipeline()));
        cm.run_cycles(cycles, &mut NullEnv, &mut NullObserver)
            .unwrap();
        assert_eq!(tw.state().vars, cm.state().vars);
        assert_eq!(tw.state().arrays, cm.state().arrays);
        assert_eq!(tw.state().sigs_out, cm.state().sigs_out);
    }

    /// The doc-example program: `a := resize(resize(a + 1, 16), 8)`.
    fn resize_tower() -> ProgramBuilder {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        pb.thread(
            "main",
            vec![
                assign(a, resize(resize(add(var(a), lit(1, 8)), 16), 8)),
                halt(),
            ],
        );
        pb
    }

    #[test]
    fn const_fold_replaces_pure_ops() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 16);
        pb.thread(
            "main",
            vec![
                assign(a, add(lit(3, 16), mul(lit(5, 16), lit(7, 16)))),
                halt(),
            ],
        );
        let naive = lower(&pb, &[]);
        assert!(listing(&naive).contains("Add"), "{}", listing(&naive));
        let folded = lower(&pb, &[Pass::ConstFold, Pass::DeadScratch]);
        let text = listing(&folded);
        assert!(!text.contains("Add"), "arith must fold away:\n{text}");
        assert!(text.contains("const 0x26"), "3 + 5*7 = 38:\n{text}");
    }

    #[test]
    fn const_fold_matches_interpreter_on_wide_values() {
        // The fold routes through the executor's ALU helpers; a 128-bit
        // constant expression must land on the interpreter's value.
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 128);
        pb.thread(
            "main",
            vec![
                assign(a, sub(shl(lit(1, 128), lit(100, 8)), lit(0x1234_5678, 128))),
                halt(),
            ],
        );
        let mut tw = Machine::new(flatten(&pb.clone().build().unwrap()).unwrap());
        tw.run_cycles(3, &mut NullEnv, &mut NullObserver).unwrap();
        let mut cm =
            crate::compile::CompiledMachine::new(lower(&pb, &[Pass::ConstFold, Pass::DeadScratch]));
        cm.run_cycles(3, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(tw.state().vars[0], cm.state().vars[0]);
    }

    #[test]
    fn copy_prop_bypasses_identity_resizes() {
        let naive = lower(&resize_tower(), &[]);
        let text = listing(&naive);
        assert!(text.contains("s3 <- s2"), "naive keeps the copy:\n{text}");
        let prop = lower(&resize_tower(), &[Pass::CopyProp]);
        let text = listing(&prop);
        // The mask now reads the Add's slot directly.
        assert!(text.contains("s4 <- s2 & 0xff"), "{text}");
    }

    #[test]
    fn coalesce_merges_slice_chains() {
        // slice(slice(x, 15, 4), 7, 4) == slice(x, 11, 8): two shifts
        // collapse into one.
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 16);
        let b = pb.reg("b", 4);
        pb.thread(
            "main",
            vec![assign(b, slice(slice(var(a), 15, 4), 7, 4)), halt()],
        );
        let naive = lower(&pb, &[]);
        assert_eq!(
            listing(&naive).matches(">>").count(),
            2,
            "{}",
            listing(&naive)
        );
        let opt = lower(&pb, &[Pass::CopyProp, Pass::Coalesce, Pass::DeadScratch]);
        let text = listing(&opt);
        assert_eq!(text.matches(">>").count(), 1, "{text}");
        assert!(text.contains(">> 8 & 0xf"), "merged shift of 4+4:\n{text}");
        // And it still computes the right value.
        let mut cm = crate::compile::CompiledMachine::new(opt);
        cm.state_mut().vars[0] = emu_types::Bits::from_u64(0xabcd, 16);
        cm.run_cycles(3, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(cm.state().vars[1].to_u64(), 0xb);
    }

    #[test]
    fn dead_scratch_removes_orphans() {
        let prop = lower(&resize_tower(), &[Pass::CopyProp]);
        let n_before = prop.threads[0].mops.len();
        let full = lower(
            &resize_tower(),
            &[Pass::CopyProp, Pass::Coalesce, Pass::DeadScratch],
        );
        let n_after = full.threads[0].mops.len();
        assert!(n_after < n_before, "{n_before} -> {n_after}");
        // The orphaned copy is gone; the terminal survives.
        let text = listing(&full);
        assert!(!text.contains("s3 <- s2\n"), "{text}");
        assert!(text.contains("var a :="), "{text}");
    }

    #[test]
    fn full_pipeline_preserves_semantics() {
        // The doc example end-to-end: optimized and unoptimized bytecode
        // both agree with the tree-walker.
        for passes in [&[][..], default_pipeline()] {
            let mut cm = crate::compile::CompiledMachine::new(lower(&resize_tower(), passes));
            cm.state_mut().vars[0] = emu_types::Bits::from_u64(0xfe, 8);
            cm.run_cycles(3, &mut NullEnv, &mut NullObserver).unwrap();
            assert_eq!(cm.state().vars[0].to_u64(), 0xff);
        }
    }

    // ------------------------------------------------------------------
    // Cross-statement passes over widened regions
    // ------------------------------------------------------------------

    #[test]
    fn store_forwarding_spans_statements() {
        // `a := a + 1; b := a + 2`: after widening, the second
        // statement's reload of `a` forwards the stored sum — one
        // register read survives.
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        let b = pb.reg("b", 8);
        pb.thread(
            "main",
            vec![
                assign(a, add(var(a), lit(1, 8))),
                assign(b, add(var(a), lit(2, 8))),
                halt(),
            ],
        );
        let text = listing(&lower(&pb, default_pipeline()));
        assert_eq!(text.matches("<- var a").count(), 1, "{text}");
        assert_lockstep(&pb, 3);
    }

    #[test]
    fn redundant_const_array_loads_collapse() {
        // Two reads of t[2] in different statements become one LdArrC
        // (ArrayStrength first turns both into constant-index loads so
        // they unify by index value).
        let mut pb = ProgramBuilder::new("p");
        let t = pb.array_init(
            "t",
            8,
            4,
            ArrayBacking::LutRam,
            vec![(2, Bits::from_u64(0x5a, 8))],
        );
        let x = pb.reg("x", 8);
        let y = pb.reg("y", 8);
        pb.thread(
            "main",
            vec![
                assign(x, arr_read(t, lit(2, 3))),
                assign(y, arr_read(t, lit(2, 3))),
                halt(),
            ],
        );
        let text = listing(&lower(&pb, default_pipeline()));
        assert_eq!(text.matches("t[#2]").count(), 1, "{text}");
        assert_eq!(text.matches("<- t[").count(), 1, "{text}");
        assert_lockstep(&pb, 3);
    }

    #[test]
    fn aliasing_array_write_blocks_reuse() {
        // A dynamic-index store between two dynamic-index loads of the
        // same array may alias them: the second load must stay.
        let mut pb = ProgramBuilder::new("p");
        let t = pb.array("t", 8, 4, ArrayBacking::LutRam);
        let i = pb.reg_init("i", 3, Bits::from_u64(1, 3));
        let x = pb.reg("x", 8);
        let y = pb.reg("y", 8);
        pb.thread(
            "main",
            vec![
                assign(x, arr_read(t, var(i))),
                arr_write(t, var(i), lit(7, 8)),
                assign(y, arr_read(t, var(i))),
                halt(),
            ],
        );
        let text = listing(&lower(&pb, default_pipeline()));
        assert_eq!(text.matches("<- t[").count(), 2, "store must kill:\n{text}");
        assert_lockstep(&pb, 3);

        // Control: without the store the loads unify through the shared
        // (copy-resolved) index slot.
        let mut pb2 = ProgramBuilder::new("p");
        let t = pb2.array("t", 8, 4, ArrayBacking::LutRam);
        let i = pb2.reg_init("i", 3, Bits::from_u64(1, 3));
        let x = pb2.reg("x", 8);
        let y = pb2.reg("y", 8);
        pb2.thread(
            "main",
            vec![
                assign(x, arr_read(t, var(i))),
                assign(y, arr_read(t, var(i))),
                halt(),
            ],
        );
        let text = listing(&lower(&pb2, default_pipeline()));
        assert_eq!(text.matches("<- t[").count(), 1, "{text}");
        assert_lockstep(&pb2, 3);
    }

    #[test]
    fn loop_invariant_loads_hoist_to_predecessor() {
        // `len` is never written inside the pause-free loop, so its
        // load hoists into the predecessor region and the loop body
        // reads the pinned slot.
        let mut pb = ProgramBuilder::new("p");
        let len = pb.reg_init("len", 8, Bits::from_u64(5, 8));
        let i = pb.reg("i", 8);
        let acc = pb.reg("acc", 8);
        pb.thread(
            "main",
            vec![
                assign(acc, lit(0, 8)),
                while_loop(
                    lt(var(i), var(len)),
                    vec![
                        assign(acc, add(var(acc), var(i))),
                        assign(i, add(var(i), lit(1, 8))),
                    ],
                ),
                halt(),
            ],
        );
        let text = listing(&lower(&pb, default_pipeline()));
        assert_eq!(
            text.matches("<- var len").count(),
            1,
            "hoisted once:\n{text}"
        );
        // 0+1+2+3+4 = 10, computed identically by both backends.
        assert_lockstep(&pb, 3);
        let mut cm = CompiledMachine::new(lower(&pb, default_pipeline()));
        cm.run_cycles(3, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(cm.state().vars[2].to_u64(), 10);
    }

    #[test]
    fn pause_blocks_cross_statement_reuse() {
        // The env can rewrite input signals at every pause, so a signal
        // read after a pause must re-sample.
        struct SigTick;
        impl Env for SigTick {
            fn tick(&mut self, cycle: u64, _prog: &Program, st: &mut MachineState) {
                st.sigs_in[0] = Bits::from_u64(0x11 + cycle, 8);
            }
        }
        let mut pb = ProgramBuilder::new("p");
        let s = pb.sig_in("s", 8);
        let a = pb.reg("a", 8);
        let b = pb.reg("b", 8);
        pb.thread(
            "main",
            vec![assign(a, sig(s)), pause(), assign(b, sig(s)), halt()],
        );
        let text = listing(&lower(&pb, default_pipeline()));
        assert_eq!(text.matches("<- sig s").count(), 2, "{text}");
        let mut tw = Machine::new(flatten(&pb.clone().build().unwrap()).unwrap());
        tw.run_cycles(4, &mut SigTick, &mut NullObserver).unwrap();
        let mut cm = CompiledMachine::new(lower(&pb, default_pipeline()));
        cm.run_cycles(4, &mut SigTick, &mut NullObserver).unwrap();
        assert_eq!(tw.state().vars, cm.state().vars);
        assert_ne!(cm.state().vars[0], cm.state().vars[1], "tick was visible");
    }

    #[test]
    fn oob_const_array_read_folds_to_zero() {
        let mut pb = ProgramBuilder::new("p");
        let t = pb.array("t", 8, 4, ArrayBacking::LutRam);
        let x = pb.reg("x", 8);
        pb.thread("main", vec![assign(x, arr_read(t, lit(9, 4))), halt()]);
        let text = listing(&lower(&pb, default_pipeline()));
        assert!(!text.contains("<- t["), "read folds away:\n{text}");
        assert_lockstep(&pb, 3);
    }

    #[test]
    fn dead_scratch_keeps_cross_statement_values() {
        // Satellite regression for the widened DeadScratch: a slot
        // produced under one source statement and read (after
        // redundant-load forwarding) by a later statement's store must
        // survive, as must a pinned hoisted load that is never read in
        // its own region.
        let mut pb = ProgramBuilder::new("p");
        let x = pb.reg_init("x", 8, Bits::from_u64(0x21, 8));
        let a = pb.reg("a", 8);
        let y = pb.reg("y", 8);
        pb.thread(
            "main",
            vec![assign(a, add(var(x), lit(1, 8))), assign(y, var(a)), halt()],
        );
        let text = listing(&lower(&pb, default_pipeline()));
        // The reload of `a` is forwarded away entirely...
        assert_eq!(text.matches("<- var a").count(), 0, "{text}");
        // ...but the producing Add must survive for both stores.
        assert_eq!(text.matches("Add").count(), 1, "{text}");
        let mut cm = CompiledMachine::new(lower(&pb, default_pipeline()));
        cm.run_cycles(3, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(cm.state().vars[2].to_u64(), 0x22);
        assert_lockstep(&pb, 3);
    }

    #[test]
    fn parse_passes_accepts_knob_forms() {
        assert_eq!(parse_passes("").unwrap(), default_pipeline().to_vec());
        assert_eq!(
            parse_passes("default").unwrap(),
            default_pipeline().to_vec()
        );
        assert_eq!(parse_passes("none").unwrap(), Vec::new());
        assert_eq!(parse_passes("stmt").unwrap(), statement_pipeline().to_vec());
        assert_eq!(
            parse_passes("const_fold, dead_scratch").unwrap(),
            vec![Pass::ConstFold, Pass::DeadScratch]
        );
        assert!(parse_passes("const_fold,bogus").is_err());
    }

    #[test]
    fn disabled_passes_still_agree_with_treewalker() {
        // `none` still widens regions (renumbering only) — a semantics
        // no-op that must stay in lockstep.
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        let b = pb.reg("b", 8);
        pb.thread(
            "main",
            vec![
                assign(a, add(var(a), lit(1, 8))),
                assign(b, add(var(a), var(b))),
                pause(),
                assign(a, mul(var(a), lit(3, 8))),
                halt(),
            ],
        );
        let flat = flatten(&pb.clone().build().unwrap()).unwrap();
        let mut tw = Machine::new(flat);
        tw.run_cycles(4, &mut NullEnv, &mut NullObserver).unwrap();
        for passes in [&[][..], statement_pipeline(), default_pipeline()] {
            let mut cm = CompiledMachine::new(lower(&pb, passes));
            cm.run_cycles(4, &mut NullEnv, &mut NullObserver).unwrap();
            assert_eq!(tw.state().vars, cm.state().vars, "passes = {passes:?}");
        }
    }

    #[test]
    fn simplify_folds_identity_add() {
        // `b := a + 0` on an 8-bit register: the Add disappears; only a
        // mask of the loaded value remains (loaded values are not
        // trusted to fit their declared width).
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg_init("a", 8, Bits::from_u64(0x21, 8));
        let b = pb.reg("b", 8);
        pb.thread("main", vec![assign(b, add(var(a), lit(0, 8))), halt()]);
        let text = listing(&lower(&pb, default_pipeline()));
        assert!(!text.contains("Add"), "identity add must fold:\n{text}");
        assert_lockstep(&pb, 3);
    }

    #[test]
    fn simplify_folds_absorbing_operands() {
        // `b := a * 0` and `c := a & 0` are constants regardless of `a`.
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg_init("a", 8, Bits::from_u64(0x5a, 8));
        let b = pb.reg("b", 8);
        let c = pb.reg("c", 8);
        pb.thread(
            "main",
            vec![
                assign(b, mul(var(a), lit(0, 8))),
                assign(c, band(var(a), lit(0, 8))),
                halt(),
            ],
        );
        let text = listing(&lower(&pb, default_pipeline()));
        assert!(!text.contains("Mul"), "{text}");
        assert!(!text.contains("And"), "{text}");
        assert_lockstep(&pb, 3);
    }

    #[test]
    fn simplify_keeps_mask_when_operand_may_overflow() {
        // `x + 0` where `x` is computed (so its bits are bounded) folds
        // to a bare copy that CopyProp then erases; the value is exact.
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg_init("a", 8, Bits::from_u64(0xff, 8));
        let b = pb.reg("b", 8);
        pb.thread(
            "main",
            vec![assign(b, add(add(var(a), lit(1, 8)), lit(0, 8))), halt()],
        );
        let text = listing(&lower(&pb, default_pipeline()));
        // Only the inner (real) Add survives.
        assert_eq!(text.matches("Add").count(), 1, "{text}");
        let mut cm = CompiledMachine::new(lower(&pb, default_pipeline()));
        cm.run_cycles(3, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(cm.state().vars[1].to_u64(), 0, "0xff + 1 wraps to 0");
        assert_lockstep(&pb, 3);
    }

    #[test]
    fn cse_merges_duplicate_computations() {
        // Two statements compute `a + 2`; after RedundantLoad unifies
        // the operand loads, value numbering leaves a single Add.
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg_init("a", 8, Bits::from_u64(7, 8));
        let b = pb.reg("b", 8);
        let c = pb.reg("c", 8);
        pb.thread(
            "main",
            vec![
                assign(b, add(var(a), lit(2, 8))),
                assign(c, add(var(a), lit(2, 8))),
                halt(),
            ],
        );
        let text = listing(&lower(&pb, default_pipeline()));
        assert_eq!(text.matches("Add").count(), 1, "{text}");
        assert_lockstep(&pb, 3);
    }

    #[test]
    fn cse_canonicalizes_commutative_operands() {
        // `a + b` and `b + a` are the same value number; `a - b` and
        // `b - a` are not.
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg_init("a", 8, Bits::from_u64(9, 8));
        let b = pb.reg_init("b", 8, Bits::from_u64(4, 8));
        let x = pb.reg("x", 8);
        let y = pb.reg("y", 8);
        pb.thread(
            "main",
            vec![
                assign(x, add(var(a), var(b))),
                assign(y, add(var(b), var(a))),
                halt(),
            ],
        );
        let text = listing(&lower(&pb, default_pipeline()));
        assert_eq!(text.matches("Add").count(), 1, "{text}");
        assert_lockstep(&pb, 3);

        let mut pb2 = ProgramBuilder::new("p");
        let a = pb2.reg_init("a", 8, Bits::from_u64(9, 8));
        let b = pb2.reg_init("b", 8, Bits::from_u64(4, 8));
        let x = pb2.reg("x", 8);
        let y = pb2.reg("y", 8);
        pb2.thread(
            "main",
            vec![
                assign(x, sub(var(a), var(b))),
                assign(y, sub(var(b), var(a))),
                halt(),
            ],
        );
        let text = listing(&lower(&pb2, default_pipeline()));
        assert_eq!(text.matches("Sub").count(), 2, "{text}");
        assert_lockstep(&pb2, 3);
    }

    #[test]
    fn cse_merges_rematerialized_constants() {
        // The same literal in two statements lowers to two ConstS ops;
        // value numbering keeps one.
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg_init("a", 8, Bits::from_u64(3, 8));
        let b = pb.reg("b", 8);
        let c = pb.reg("c", 8);
        pb.thread(
            "main",
            vec![
                assign(b, add(var(a), lit(0x2d, 8))),
                assign(c, bxor(var(a), lit(0x2d, 8))),
                halt(),
            ],
        );
        let text = listing(&lower(&pb, default_pipeline()));
        assert_eq!(text.matches("const 0x2d").count(), 1, "{text}");
        assert_lockstep(&pb, 3);
    }

    #[test]
    fn fuse_pairs_fuses_const_adjacent_loads() {
        // A big-endian 16-bit field read over two constant indices —
        // two loads and a concat — becomes one fused pair read, and the
        // displaced loads die.
        let mut pb = ProgramBuilder::new("p");
        let t = pb.array_init(
            "t",
            8,
            4,
            ArrayBacking::LutRam,
            vec![(2, Bits::from_u64(0xab, 8)), (3, Bits::from_u64(0xcd, 8))],
        );
        let x = pb.reg("x", 16);
        pb.thread(
            "main",
            vec![
                assign(x, concat(arr_read(t, lit(2, 3)), arr_read(t, lit(3, 3)))),
                halt(),
            ],
        );
        let text = listing(&lower(&pb, default_pipeline()));
        assert_eq!(text.matches("{t[#2], t[#3]:u8}").count(), 1, "{text}");
        assert_eq!(text.matches("<- t[#2]\n").count(), 0, "{text}");
        assert_lockstep(&pb, 3);
    }

    #[test]
    fn fuse_pairs_folds_dynamic_index_arithmetic() {
        // The Internet-checksum shape: a pair read at `(i + 2, i + 3)`
        // computed as a masked offset add plus a `+ 1` add. The fused
        // op absorbs the loads, the concat, *and* the index arithmetic.
        let mut pb = ProgramBuilder::new("p");
        let t = pb.array_init(
            "t",
            8,
            4,
            ArrayBacking::LutRam,
            vec![(2, Bits::from_u64(0xab, 8)), (3, Bits::from_u64(0xcd, 8))],
        );
        let i = pb.reg("i", 4);
        let x = pb.reg("x", 16);
        let base = add(var(i), lit(2, 4));
        pb.thread(
            "main",
            vec![
                assign(
                    x,
                    concat(arr_read(t, base.clone()), arr_read(t, add(base, lit(1, 4)))),
                ),
                halt(),
            ],
        );
        let text = listing(&lower(&pb, default_pipeline()));
        assert_eq!(
            text.matches("{t[(s0+0x2) & 0xf], t[+1]:u8}").count(),
            1,
            "{text}"
        );
        assert_eq!(text.matches("<- t[s").count(), 0, "loads must die:\n{text}");
        assert_lockstep(&pb, 3);
    }

    #[test]
    fn fuse_pairs_tower_low_byte_rides_concat() {
        // A 3-byte tower: the innermost pair fuses, and the remaining
        // byte rides its concat as a fused low-part load.
        let mut pb = ProgramBuilder::new("p");
        let t = pb.array_init(
            "t",
            8,
            4,
            ArrayBacking::LutRam,
            vec![
                (0, Bits::from_u64(0x12, 8)),
                (1, Bits::from_u64(0x34, 8)),
                (2, Bits::from_u64(0x56, 8)),
            ],
        );
        let x = pb.reg("x", 24);
        pb.thread(
            "main",
            vec![
                assign(
                    x,
                    concat(
                        concat(arr_read(t, lit(0, 2)), arr_read(t, lit(1, 2))),
                        arr_read(t, lit(2, 2)),
                    ),
                ),
                halt(),
            ],
        );
        let text = listing(&lower(&pb, default_pipeline()));
        assert_eq!(text.matches("{t[#0], t[#1]:u8}").count(), 1, "{text}");
        assert_eq!(text.matches(", t[#2]:u8}").count(), 1, "{text}");
        assert_eq!(
            text.matches("<- t[#").count(),
            0,
            "no standalone loads survive:\n{text}"
        );
        assert_lockstep(&pb, 3);
    }

    #[test]
    fn store_between_loads_blocks_pair_fusion() {
        // After widening, a store into the array sits between the high
        // load and the concat (the high value reaches the concat
        // through store-forwarding of `a`). Re-reading both elements at
        // the concat would see the new `t[1]`, so the pair fusion must
        // not fire; fusing only the *low* load — which already sits
        // after the store — is still legal.
        let mut pb = ProgramBuilder::new("p");
        let t = pb.array_init(
            "t",
            8,
            4,
            ArrayBacking::LutRam,
            vec![(0, Bits::from_u64(0x12, 8)), (1, Bits::from_u64(0x34, 8))],
        );
        let a = pb.reg("a", 8);
        let x = pb.reg("x", 16);
        pb.thread(
            "main",
            vec![
                assign(a, arr_read(t, lit(0, 2))),
                arr_write(t, lit(1, 2), lit(0x99, 8)),
                assign(x, concat(var(a), arr_read(t, lit(1, 2)))),
                halt(),
            ],
        );
        let text = listing(&lower(&pb, default_pipeline()));
        assert_eq!(
            text.matches("{t[#0], t[#1]:u8}").count(),
            0,
            "pair fusion across the store is unsound:\n{text}"
        );
        assert_lockstep(&pb, 5);
        // x must see the *stored* low byte.
        let mut cm = CompiledMachine::new(lower(&pb, default_pipeline()));
        cm.run_cycles(5, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(cm.state().vars[1].to_u64(), 0x1299);
    }
}
