//! The micro-op optimization pass pipeline.
//!
//! Passes run at lowering time, between [`mod@crate::compile`]'s naive
//! per-statement lowering and the final flatten/retarget step. They
//! operate on **regions** — one `Vec<MOp>` per source [`crate::flat::Op`]
//! — inside which scratch slots are written exactly once before use
//! (statement-local SSA). Branches only ever target region starts, so a
//! pass may delete or rewrite ops freely within a region without
//! touching control flow, and no pass moves work *across* regions: the
//! environment may mutate machine state at any statement boundary
//! (observers, `ExtPoint`, `Env::tick` at pauses), so cached loads must
//! not outlive their statement.
//!
//! The default pipeline is
//! [`ConstFold`](Pass::ConstFold) → [`CopyProp`](Pass::CopyProp) →
//! [`Coalesce`](Pass::Coalesce) → [`DeadScratch`](Pass::DeadScratch).
//! Constant folding routes through the *same* ALU helpers the executor
//! uses, so a fold can never disagree with execution.
//!
//! # Before / after
//!
//! The statement `a := resize(resize(a + 1, 16), 8)` on an 8-bit
//! register lowers naively to
//!
//! ```text
//!   0: s0 <- var a
//!   1: s1 <- const 0x1
//!   2: s2 <- s0 Add s1 & 0xff
//!   3: s3 <- s2            // resize 8 -> 16: identity copy
//!   4: s4 <- s3 & 0xff     // resize 16 -> 8: mask
//!   5: var a := s4
//! ```
//!
//! after the pipeline the copy is propagated, the mask collapses, and
//! the dead slots disappear:
//!
//! ```text
//!   0: s0 <- var a
//!   1: s1 <- const 0x1
//!   2: s2 <- s0 Add s1 & 0xff
//!   3: s3 <- s2 & 0xff
//!   4: var a := s3
//! ```
//!
//! (each pass is individually testable — see the tests below, which
//! assert on exactly these pretty-printed listings).

use crate::compile::{bin_s, bin_w, cmp_s, cmp_w, shift_amount, shl_s, shr_s, MOp, Slot};
use emu_types::Bits;
use std::collections::HashMap;

/// One optimization pass over the lowered regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Evaluate pure micro-ops whose operands are all constants,
    /// replacing them with `ConstS`/`ConstW` loads.
    ConstFold,
    /// Rewrite uses of `CopyS`/`CopyW` destinations to their sources
    /// (the copies themselves die in [`Pass::DeadScratch`]).
    CopyProp,
    /// Merge chained slice/resize ops — `(x >> a & m1) >> b & m2` folds
    /// to one shift-and-mask — the coalescing that makes byte-field
    /// access over `Resize`/`Slice` towers cheap.
    Coalesce,
    /// Remove producer ops whose destination slot is never read.
    DeadScratch,
}

/// The default pipeline, in order.
pub fn default_pipeline() -> &'static [Pass] {
    &[
        Pass::ConstFold,
        Pass::CopyProp,
        Pass::Coalesce,
        Pass::DeadScratch,
    ]
}

/// Runs `passes` over every region, in order.
pub fn run(regions: &mut [Vec<MOp>], passes: &[Pass]) {
    for region in regions.iter_mut() {
        for pass in passes {
            match pass {
                Pass::ConstFold => const_fold(region),
                Pass::CopyProp => copy_prop(region),
                Pass::Coalesce => coalesce(region),
                Pass::DeadScratch => dead_scratch(region),
            }
        }
    }
}

/// Constant folding: forward pass tracking slots with known values.
fn const_fold(region: &mut [MOp]) {
    let mut sc: HashMap<Slot, u64> = HashMap::new();
    let mut wc: HashMap<Slot, Bits> = HashMap::new();
    for op in region.iter_mut() {
        let s = |slot: &Slot| sc.get(slot).copied();
        let w = |slot: &Slot| wc.get(slot);
        let folded: Option<MOp> = match &*op {
            MOp::CopyS { dst, a } => s(a).map(|v| MOp::ConstS { dst: *dst, v }),
            MOp::CopyW { dst, a } => w(a).map(|v| MOp::ConstW {
                dst: *dst,
                v: v.clone(),
            }),
            MOp::Widen { dst, a, w: width } => s(a).map(|v| MOp::ConstW {
                dst: *dst,
                v: Bits::from_u64(v, *width),
            }),
            MOp::Narrow { dst, a, mask } => w(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: v.to_u64() & mask,
            }),
            MOp::MaskS { dst, a, mask } => s(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: v & mask,
            }),
            MOp::ResizeW { dst, a, w: width } => w(a).map(|v| MOp::ConstW {
                dst: *dst,
                v: v.resize(*width),
            }),
            MOp::NotS { dst, a, mask } => s(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: !v & mask,
            }),
            MOp::NegS { dst, a, mask } => s(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: v.wrapping_neg() & mask,
            }),
            MOp::RedOrS { dst, a } => s(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: u64::from(v != 0),
            }),
            MOp::NotW { dst, a } => w(a).map(|v| MOp::ConstW {
                dst: *dst,
                v: v.not(),
            }),
            MOp::NegW { dst, a } => w(a).map(|v| MOp::ConstW {
                dst: *dst,
                v: Bits::zero(v.width()).wrapping_sub(v),
            }),
            MOp::RedOrW { dst, a } => w(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: u64::from(!v.is_zero()),
            }),
            MOp::BinS {
                dst,
                op,
                a,
                b,
                mask,
            } => s(a).zip(s(b)).map(|(x, y)| MOp::ConstS {
                dst: *dst,
                v: bin_s(*op, x, y, *mask),
            }),
            MOp::CmpS { dst, op, a, b } => s(a).zip(s(b)).map(|(x, y)| MOp::ConstS {
                dst: *dst,
                v: cmp_s(*op, x, y),
            }),
            MOp::ShlS { dst, a, b, mask } => s(a).zip(s(b)).map(|(x, n)| MOp::ConstS {
                dst: *dst,
                v: shl_s(x, n, *mask),
            }),
            MOp::ShrS { dst, a, b } => s(a).zip(s(b)).map(|(x, n)| MOp::ConstS {
                dst: *dst,
                v: shr_s(x, n),
            }),
            MOp::ConcatS { dst, a, b, bw } => s(a).zip(s(b)).map(|(x, y)| MOp::ConstS {
                dst: *dst,
                v: (x << bw) | y,
            }),
            MOp::SliceS { dst, a, lo, mask } => s(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: (v >> lo) & mask,
            }),
            MOp::SliceWS { dst, a, lo, mask } => w(a).map(|v| MOp::ConstS {
                dst: *dst,
                v: v.shr(u32::from(*lo)).to_u64() & mask,
            }),
            MOp::SliceW { dst, a, hi, lo } => w(a).map(|v| MOp::ConstW {
                dst: *dst,
                v: v.slice(*hi, *lo),
            }),
            MOp::BinW { dst, op, a, b } => w(a).zip(w(b)).map(|(x, y)| MOp::ConstW {
                dst: *dst,
                v: bin_w(*op, x, y),
            }),
            MOp::CmpW { dst, op, a, b } => w(a).zip(w(b)).map(|(x, y)| MOp::ConstS {
                dst: *dst,
                v: cmp_w(*op, x, y),
            }),
            MOp::ShlW { dst, a, b } => w(a).zip(s(b).as_ref()).map(|(x, n)| MOp::ConstW {
                dst: *dst,
                v: x.shl(shift_amount(*n)),
            }),
            MOp::ShrW { dst, a, b } => w(a).zip(s(b).as_ref()).map(|(x, n)| MOp::ConstW {
                dst: *dst,
                v: x.shr(shift_amount(*n)),
            }),
            MOp::ConcatW { dst, a, b } => w(a).zip(w(b)).map(|(x, y)| MOp::ConstW {
                dst: *dst,
                v: x.concat(y),
            }),
            MOp::MuxS { dst, c, t, e } => {
                s(c).zip(s(t).zip(s(e))).map(|(cv, (tv, ev))| MOp::ConstS {
                    dst: *dst,
                    v: if cv != 0 { tv } else { ev },
                })
            }
            MOp::MuxW { dst, c, t, e } => {
                s(c).zip(w(t).zip(w(e))).map(|(cv, (tv, ev))| MOp::ConstW {
                    dst: *dst,
                    v: if cv != 0 { tv.clone() } else { ev.clone() },
                })
            }
            _ => None,
        };
        if let Some(f) = folded {
            *op = f;
        }
        match op {
            MOp::ConstS { dst, v } => {
                sc.insert(*dst, *v);
            }
            MOp::ConstW { dst, v } => {
                wc.insert(*dst, v.clone());
            }
            _ => {}
        }
    }
}

/// Copy propagation: substitute copy sources into later uses.
fn copy_prop(region: &mut [MOp]) {
    let mut map_s: HashMap<Slot, Slot> = HashMap::new();
    let mut map_w: HashMap<Slot, Slot> = HashMap::new();
    for op in region.iter_mut() {
        op.uses_mut(&mut |slot, wide| {
            let m = if wide { &map_w } else { &map_s };
            if let Some(&r) = m.get(slot) {
                *slot = r;
            }
        });
        // Record after rewriting, so chains resolve transitively.
        match op {
            MOp::CopyS { dst, a } => {
                map_s.insert(*dst, *a);
            }
            MOp::CopyW { dst, a } => {
                map_w.insert(*dst, *a);
            }
            _ => {}
        }
    }
}

/// Slice/resize coalescing over the small scratch file.
///
/// All four rewrites are pure shift-and-mask algebra on canonical `u64`
/// values; the summed shifts stay below 64 because each `lo` is bounded
/// by its source expression's width.
fn coalesce(region: &mut [MOp]) {
    let mut defs: HashMap<Slot, MOp> = HashMap::new();
    for op in region.iter_mut() {
        let rep = match &*op {
            MOp::MaskS { dst, a, mask } => match defs.get(a) {
                Some(MOp::MaskS {
                    a: a2, mask: m2, ..
                }) => Some(MOp::MaskS {
                    dst: *dst,
                    a: *a2,
                    mask: mask & m2,
                }),
                Some(MOp::SliceS {
                    a: a2,
                    lo,
                    mask: m2,
                    ..
                }) => Some(MOp::SliceS {
                    dst: *dst,
                    a: *a2,
                    lo: *lo,
                    mask: m2 & mask,
                }),
                _ => None,
            },
            MOp::SliceS { dst, a, lo, mask } => match defs.get(a) {
                Some(MOp::MaskS {
                    a: a2, mask: m2, ..
                }) => Some(MOp::SliceS {
                    dst: *dst,
                    a: *a2,
                    lo: *lo,
                    mask: (m2 >> lo) & mask,
                }),
                Some(MOp::SliceS {
                    a: a2,
                    lo: l2,
                    mask: m2,
                    ..
                }) => Some(MOp::SliceS {
                    dst: *dst,
                    a: *a2,
                    lo: lo + l2,
                    mask: (m2 >> lo) & mask,
                }),
                _ => None,
            },
            _ => None,
        };
        if let Some(r) = rep {
            *op = r;
        }
        if let Some((d, false)) = op.dst() {
            defs.insert(d, op.clone());
        }
    }
}

/// Dead scratch elimination: backward liveness within the region;
/// terminals are the roots.
fn dead_scratch(region: &mut Vec<MOp>) {
    let mut live: std::collections::HashSet<(Slot, bool)> = std::collections::HashSet::new();
    let mut keep = vec![true; region.len()];
    for i in (0..region.len()).rev() {
        let op = &region[i];
        let needed = match op.dst() {
            Some(d) => live.contains(&d),
            None => true, // terminals
        };
        if !needed {
            keep[i] = false;
            continue;
        }
        op.uses(&mut |s, w| {
            live.insert((s, w));
        });
    }
    let mut it = keep.iter();
    region.retain(|_| *it.next().expect("keep mask sized to region"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_with_passes, mops_to_string, CompiledProgram};
    use crate::dsl::*;
    use crate::flat::flatten;
    use crate::interp::{Machine, NullEnv, NullObserver};
    use crate::program::ProgramBuilder;

    /// Compiles `pb`'s program under the given passes.
    fn lower(pb: &ProgramBuilder, passes: &[Pass]) -> CompiledProgram {
        compile_with_passes(&flatten(&pb.clone().build().unwrap()).unwrap(), passes).unwrap()
    }

    fn listing(cp: &CompiledProgram) -> String {
        mops_to_string(&cp.threads[0], &cp.prog)
    }

    /// The doc-example program: `a := resize(resize(a + 1, 16), 8)`.
    fn resize_tower() -> ProgramBuilder {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        pb.thread(
            "main",
            vec![
                assign(a, resize(resize(add(var(a), lit(1, 8)), 16), 8)),
                halt(),
            ],
        );
        pb
    }

    #[test]
    fn const_fold_replaces_pure_ops() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 16);
        pb.thread(
            "main",
            vec![
                assign(a, add(lit(3, 16), mul(lit(5, 16), lit(7, 16)))),
                halt(),
            ],
        );
        let naive = lower(&pb, &[]);
        assert!(listing(&naive).contains("Add"), "{}", listing(&naive));
        let folded = lower(&pb, &[Pass::ConstFold, Pass::DeadScratch]);
        let text = listing(&folded);
        assert!(!text.contains("Add"), "arith must fold away:\n{text}");
        assert!(text.contains("const 0x26"), "3 + 5*7 = 38:\n{text}");
    }

    #[test]
    fn const_fold_matches_interpreter_on_wide_values() {
        // The fold routes through the executor's ALU helpers; a 128-bit
        // constant expression must land on the interpreter's value.
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 128);
        pb.thread(
            "main",
            vec![
                assign(a, sub(shl(lit(1, 128), lit(100, 8)), lit(0x1234_5678, 128))),
                halt(),
            ],
        );
        let mut tw = Machine::new(flatten(&pb.clone().build().unwrap()).unwrap());
        tw.run_cycles(3, &mut NullEnv, &mut NullObserver).unwrap();
        let mut cm =
            crate::compile::CompiledMachine::new(lower(&pb, &[Pass::ConstFold, Pass::DeadScratch]));
        cm.run_cycles(3, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(tw.state().vars[0], cm.state().vars[0]);
    }

    #[test]
    fn copy_prop_bypasses_identity_resizes() {
        let naive = lower(&resize_tower(), &[]);
        let text = listing(&naive);
        assert!(text.contains("s3 <- s2"), "naive keeps the copy:\n{text}");
        let prop = lower(&resize_tower(), &[Pass::CopyProp]);
        let text = listing(&prop);
        // The mask now reads the Add's slot directly.
        assert!(text.contains("s4 <- s2 & 0xff"), "{text}");
    }

    #[test]
    fn coalesce_merges_slice_chains() {
        // slice(slice(x, 15, 4), 7, 4) == slice(x, 11, 8): two shifts
        // collapse into one.
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 16);
        let b = pb.reg("b", 4);
        pb.thread(
            "main",
            vec![assign(b, slice(slice(var(a), 15, 4), 7, 4)), halt()],
        );
        let naive = lower(&pb, &[]);
        assert_eq!(
            listing(&naive).matches(">>").count(),
            2,
            "{}",
            listing(&naive)
        );
        let opt = lower(&pb, &[Pass::CopyProp, Pass::Coalesce, Pass::DeadScratch]);
        let text = listing(&opt);
        assert_eq!(text.matches(">>").count(), 1, "{text}");
        assert!(text.contains(">> 8 & 0xf"), "merged shift of 4+4:\n{text}");
        // And it still computes the right value.
        let mut cm = crate::compile::CompiledMachine::new(opt);
        cm.state_mut().vars[0] = emu_types::Bits::from_u64(0xabcd, 16);
        cm.run_cycles(3, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(cm.state().vars[1].to_u64(), 0xb);
    }

    #[test]
    fn dead_scratch_removes_orphans() {
        let prop = lower(&resize_tower(), &[Pass::CopyProp]);
        let n_before = prop.threads[0].mops.len();
        let full = lower(
            &resize_tower(),
            &[Pass::CopyProp, Pass::Coalesce, Pass::DeadScratch],
        );
        let n_after = full.threads[0].mops.len();
        assert!(n_after < n_before, "{n_before} -> {n_after}");
        // The orphaned copy is gone; the terminal survives.
        let text = listing(&full);
        assert!(!text.contains("s3 <- s2\n"), "{text}");
        assert!(text.contains("var a :="), "{text}");
    }

    #[test]
    fn full_pipeline_preserves_semantics() {
        // The doc example end-to-end: optimized and unoptimized bytecode
        // both agree with the tree-walker.
        for passes in [&[][..], default_pipeline()] {
            let mut cm = crate::compile::CompiledMachine::new(lower(&resize_tower(), passes));
            cm.state_mut().vars[0] = emu_types::Bits::from_u64(0xfe, 8);
            cm.run_cycles(3, &mut NullEnv, &mut NullObserver).unwrap();
            assert_eq!(cm.state().vars[0].to_u64(), 0xff);
        }
    }
}
