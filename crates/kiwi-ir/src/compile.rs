//! The compiled software backend: lowering [`FlatThread`] op streams to a
//! register-based micro-op bytecode executed by a tight, non-recursive
//! loop.
//!
//! The tree-walking interpreter in [`crate::interp`] is the *reference*
//! software semantics: simple, obviously faithful to [`crate::ast`], and
//! slow — it re-decodes the same `Box<Expr>` nodes every frame, clones a
//! multi-limb [`Bits`] at every node, and re-resolves widths on every
//! binary op. This module trades that tree for a **pre-decoded linear
//! program** over explicit scratch-slot registers:
//!
//! * every `VarId` / `ArrId` / `SigId` is resolved to a plain index at
//!   lowering time,
//! * every operand and result width is pre-computed, with the width rules
//!   of [`crate::ast`] baked into per-op masks,
//! * values of width ≤ 64 live in a `u64` scratch file (the fast path —
//!   all frame bytes and almost every service register), while wider
//!   values fall back to [`Bits`] scratch slots,
//! * execution is a single `match` over compact micro-ops — no recursion,
//!   no per-node clones, no heap traffic on the fast path.
//!
//! Lowering feeds the pass pipeline in [`crate::opt`] (constant folding,
//! copy propagation, slice/resize coalescing, dead scratch elimination)
//! before the bytecode is frozen into a [`CompiledProgram`].
//!
//! [`CompiledMachine`] mirrors [`crate::interp::Machine`] exactly:
//! pause-to-pause cycles, the same [`Env`]/[`Observer`] hooks, the same
//! op budget, the same [`MachineState`] (including the `arr_high`
//! high-water contract). Every observable — register values, array
//! contents, signal drives, observer callbacks, cycle and op counts —
//! is byte-identical to the tree-walker by construction, and the
//! differential suites assert it.

use crate::ast::{BinOp, IrError, IrResult, UnOp};
use crate::flat::{FlatProgram, FlatThread, Op};
use crate::interp::{Env, MachineState, Observer};
use crate::program::{Program, SigDir};
use emu_types::Bits;

/// Index of a scratch slot (small and wide slots are separate files).
pub type Slot = u32;

// ---------------------------------------------------------------------
// Shared ALU helpers
//
// Both the executor and the constant folder in `opt.rs` go through these
// functions, so folding can never diverge from execution.
// ---------------------------------------------------------------------

/// Bit mask covering the low `w` bits (`w >= 64` saturates to all-ones).
#[inline]
pub(crate) fn mask_of(w: u16) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// Small-path arithmetic/logic in the result width encoded by `mask`.
#[inline]
pub(crate) fn bin_s(op: BinOp, a: u64, b: u64, mask: u64) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b) & mask,
        BinOp::Sub => a.wrapping_sub(b) & mask,
        BinOp::Mul => a.wrapping_mul(b) & mask,
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        _ => unreachable!("bin_s on non-arith op {op:?}"),
    }
}

/// Small-path unsigned comparison (operands are canonical, so raw `u64`
/// comparison equals comparison at the common width).
#[inline]
pub(crate) fn cmp_s(op: BinOp, a: u64, b: u64) -> u64 {
    u64::from(match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        _ => unreachable!("cmp_s on non-compare op {op:?}"),
    })
}

/// Small-path `<<` in the left operand's width (`mask`); shifts at or
/// beyond 64 bits yield zero, and `(a << n) & mask` zeroes everything
/// shifted past the operand width, matching [`Bits::shl`].
#[inline]
pub(crate) fn shl_s(a: u64, n: u64, mask: u64) -> u64 {
    if n >= 64 {
        0
    } else {
        (a << n) & mask
    }
}

/// Small-path `>>`; operands are canonical so no mask is needed.
#[inline]
pub(crate) fn shr_s(a: u64, n: u64) -> u64 {
    if n >= 64 {
        0
    } else {
        a >> n
    }
}

/// Wide-path arithmetic/logic; operands have been resized to the common
/// result width already.
#[inline]
pub(crate) fn bin_w(op: BinOp, a: &Bits, b: &Bits) -> Bits {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::And => a.and(b),
        BinOp::Or => a.or(b),
        BinOp::Xor => a.xor(b),
        _ => unreachable!("bin_w on non-arith op {op:?}"),
    }
}

/// Wide-path comparison on operands resized to the common width.
#[inline]
pub(crate) fn cmp_w(op: BinOp, a: &Bits, b: &Bits) -> u64 {
    use std::cmp::Ordering::*;
    u64::from(match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a.cmp_u(b) == Less,
        BinOp::Le => a.cmp_u(b) != Greater,
        BinOp::Gt => a.cmp_u(b) == Greater,
        BinOp::Ge => a.cmp_u(b) != Less,
        _ => unreachable!("cmp_w on non-compare op {op:?}"),
    })
}

/// Wide-path shift amount clamp, mirroring `eval`'s
/// `rv.to_u64().min(u32::MAX)`.
#[inline]
pub(crate) fn shift_amount(n: u64) -> u32 {
    n.min(u64::from(u32::MAX)) as u32
}

// ---------------------------------------------------------------------
// The micro-op ISA
// ---------------------------------------------------------------------

/// One pre-decoded micro-op.
///
/// Naming convention: a trailing `S` operates on the small (`u64`)
/// scratch file, `W` on the wide ([`Bits`]) file. `St*` / control ops are
/// *terminals* — each corresponds to exactly one source [`Op`], which is
/// where the op budget and `ops_executed` are counted, keeping profiling
/// and trap behaviour aligned with the tree-walker.
#[derive(Debug, Clone, PartialEq)]
pub enum MOp {
    /// Load a constant into a small slot.
    ConstS {
        /// Destination slot.
        dst: Slot,
        /// Canonical value.
        v: u64,
    },
    /// Load a constant into a wide slot.
    ConstW {
        /// Destination slot.
        dst: Slot,
        /// The constant (carries its exact width).
        v: Bits,
    },
    /// Read a register (width ≤ 64).
    LdVarS {
        /// Destination slot.
        dst: Slot,
        /// Register index.
        var: u32,
    },
    /// Read a register (width > 64).
    LdVarW {
        /// Destination slot.
        dst: Slot,
        /// Register index.
        var: u32,
    },
    /// Sample a signal (width ≤ 64).
    LdSigS {
        /// Destination slot.
        dst: Slot,
        /// Signal index.
        sig: u32,
        /// Sample `sigs_out` instead of `sigs_in`.
        out: bool,
    },
    /// Sample a signal (width > 64).
    LdSigW {
        /// Destination slot.
        dst: Slot,
        /// Signal index.
        sig: u32,
        /// Sample `sigs_out` instead of `sigs_in`.
        out: bool,
    },
    /// Array element read, elements ≤ 64 bits; out-of-range reads zero.
    LdArrS {
        /// Destination slot.
        dst: Slot,
        /// Array index.
        arr: u32,
        /// Small slot holding the element index.
        idx: Slot,
    },
    /// Array element read, elements > 64 bits.
    LdArrW {
        /// Destination slot.
        dst: Slot,
        /// Array index.
        arr: u32,
        /// Small slot holding the element index.
        idx: Slot,
        /// Element width (for the out-of-range zero).
        w: u16,
    },
    /// Array element read at a compile-time-constant, in-bounds index
    /// (elements ≤ 64 bits). Produced by
    /// [`ArrayStrength`](crate::opt::Pass::ArrayStrength): the index
    /// slot and its `ConstS` feeder disappear entirely.
    LdArrCS {
        /// Destination slot.
        dst: Slot,
        /// Array index.
        arr: u32,
        /// Constant element index, proven in bounds at compile time.
        idx: u32,
    },
    /// Array element read at a compile-time-constant, in-bounds index
    /// (elements > 64 bits).
    LdArrCW {
        /// Destination slot.
        dst: Slot,
        /// Array index.
        arr: u32,
        /// Constant element index, proven in bounds at compile time.
        idx: u32,
    },
    /// Fused read of two adjacent array elements (≤ 64 bits each),
    /// concatenated high-to-low: with `i = (idx + off) & mask` and
    /// `j = (i + 1) & mask`, `dst = (a[i] << bw) | a[j]`. The offset
    /// add, wrap masks, and both loads reproduce the index arithmetic
    /// the fusion replaced, micro-op for micro-op. Produced by
    /// [`FusePairs`](crate::opt::Pass::FusePairs) from a `ConcatS` of
    /// two loads at consecutive indices; each element reads the
    /// architectural zero when out of range, exactly like the two
    /// `LdArrS` it replaces.
    LdArrPairS {
        /// Destination slot.
        dst: Slot,
        /// Small slot holding the base index.
        idx: Slot,
        /// Array index.
        arr: u32,
        /// Constant offset the replaced index add applied to `idx`.
        off: u64,
        /// Wrap mask the replaced index arithmetic applied.
        mask: u64,
        /// Element width in bits (the concat's low-part width).
        bw: u16,
    },
    /// Fused read of two adjacent array elements at compile-time-
    /// constant indices: `dst = (a[idx] << bw) | a[idx + 1]`, both
    /// indices proven in bounds at compile time.
    LdArrPairCS {
        /// Destination slot.
        dst: Slot,
        /// Array index.
        arr: u32,
        /// Constant first element index (`idx + 1` is in bounds too).
        idx: u32,
        /// Element width in bits.
        bw: u16,
    },
    /// Fused concat whose low part is an array load at a dynamic
    /// index: `dst = (a << bw) | arr[idx]` (out-of-range reads zero).
    /// Produced by [`FusePairs`](crate::opt::Pass::FusePairs) for the
    /// inner steps of multi-byte concat towers, where the high part is
    /// itself an accumulated value rather than a single load.
    ConcatLdS {
        /// Destination slot.
        dst: Slot,
        /// High-part slot.
        a: Slot,
        /// Array index.
        arr: u32,
        /// Small slot holding the low part's element index.
        idx: Slot,
        /// Width of the low part.
        bw: u16,
    },
    /// Fused concat whose low part is an array load at a compile-time-
    /// constant, in-bounds index: `dst = (a << bw) | arr[#idx]`.
    ConcatLdCS {
        /// Destination slot.
        dst: Slot,
        /// High-part slot.
        a: Slot,
        /// Array index.
        arr: u32,
        /// Constant element index, proven in bounds at compile time.
        idx: u32,
        /// Width of the low part.
        bw: u16,
    },
    /// Small-to-small move (identity resize; fodder for copy propagation).
    CopyS {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        a: Slot,
    },
    /// Wide-to-wide move.
    CopyW {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        a: Slot,
    },
    /// Small value into a wide slot of width `w` (zero-extension).
    Widen {
        /// Destination slot (wide).
        dst: Slot,
        /// Source slot (small).
        a: Slot,
        /// Exact result width.
        w: u16,
    },
    /// Wide value truncated into a small slot (`mask` = result width).
    Narrow {
        /// Destination slot (small).
        dst: Slot,
        /// Source slot (wide).
        a: Slot,
        /// Mask of the result width.
        mask: u64,
    },
    /// Small resize/truncate: `dst = a & mask`.
    MaskS {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        a: Slot,
        /// Mask of the result width.
        mask: u64,
    },
    /// Wide-to-wide resize to width `w`.
    ResizeW {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        a: Slot,
        /// Result width.
        w: u16,
    },
    /// Small bitwise NOT in the operand width.
    NotS {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        a: Slot,
        /// Mask of the operand width.
        mask: u64,
    },
    /// Small two's-complement negation in the operand width.
    NegS {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        a: Slot,
        /// Mask of the operand width.
        mask: u64,
    },
    /// Small OR-reduction to one bit.
    RedOrS {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        a: Slot,
    },
    /// Wide bitwise NOT.
    NotW {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        a: Slot,
    },
    /// Wide two's-complement negation.
    NegW {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        a: Slot,
    },
    /// Wide OR-reduction into a small 1-bit slot.
    RedOrW {
        /// Destination slot (small).
        dst: Slot,
        /// Source slot (wide).
        a: Slot,
    },
    /// Small arithmetic/logic at the pre-computed result width.
    BinS {
        /// Destination slot.
        dst: Slot,
        /// Operator (arith/logic subset).
        op: BinOp,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
        /// Mask of the result width.
        mask: u64,
    },
    /// Small unsigned comparison (1-bit result).
    CmpS {
        /// Destination slot.
        dst: Slot,
        /// Comparison operator.
        op: BinOp,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Small `<<` in the left operand's width.
    ShlS {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Shift-amount slot.
        b: Slot,
        /// Mask of the left operand's width.
        mask: u64,
    },
    /// Small `>>`.
    ShrS {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Shift-amount slot.
        b: Slot,
    },
    /// Small concatenation: `dst = (a << bw) | b`.
    ConcatS {
        /// Destination slot.
        dst: Slot,
        /// High part slot.
        a: Slot,
        /// Low part slot.
        b: Slot,
        /// Width of the low part.
        bw: u16,
    },
    /// Small slice: `dst = (a >> lo) & mask`.
    SliceS {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        a: Slot,
        /// Low bit of the slice.
        lo: u16,
        /// Mask of the slice width.
        mask: u64,
    },
    /// Slice of a wide value into a small slot.
    SliceWS {
        /// Destination slot (small).
        dst: Slot,
        /// Source slot (wide).
        a: Slot,
        /// Low bit of the slice.
        lo: u16,
        /// Mask of the slice width.
        mask: u64,
    },
    /// Slice of a wide value into a wide slot.
    SliceW {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        a: Slot,
        /// High bit of the slice (inclusive).
        hi: u16,
        /// Low bit of the slice.
        lo: u16,
    },
    /// Wide arithmetic/logic; operands pre-resized to the result width.
    BinW {
        /// Destination slot.
        dst: Slot,
        /// Operator (arith/logic subset).
        op: BinOp,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Wide comparison into a small 1-bit slot; operands pre-resized.
    CmpW {
        /// Destination slot (small).
        dst: Slot,
        /// Comparison operator.
        op: BinOp,
        /// Left operand slot (wide).
        a: Slot,
        /// Right operand slot (wide).
        b: Slot,
    },
    /// Wide `<<` in the (unresized) left operand's width.
    ShlW {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot (wide).
        a: Slot,
        /// Shift-amount slot (small).
        b: Slot,
    },
    /// Wide `>>`.
    ShrW {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot (wide).
        a: Slot,
        /// Shift-amount slot (small).
        b: Slot,
    },
    /// Wide concatenation; operand widths are carried by the values.
    ConcatW {
        /// Destination slot.
        dst: Slot,
        /// High part slot.
        a: Slot,
        /// Low part slot.
        b: Slot,
    },
    /// Small two-way mux (operands canonical at the result width).
    MuxS {
        /// Destination slot.
        dst: Slot,
        /// Condition slot (small; non-zero selects `t`).
        c: Slot,
        /// Then-value slot.
        t: Slot,
        /// Else-value slot.
        e: Slot,
    },
    /// Wide two-way mux; arms pre-resized to the result width.
    MuxW {
        /// Destination slot.
        dst: Slot,
        /// Condition slot (small).
        c: Slot,
        /// Then-value slot (wide).
        t: Slot,
        /// Else-value slot (wide).
        e: Slot,
    },
    /// Terminal: register assignment from a small slot.
    StVarS {
        /// Register index.
        var: u32,
        /// Value slot.
        a: Slot,
        /// Register width.
        w: u16,
    },
    /// Terminal: register assignment from a wide slot.
    StVarW {
        /// Register index.
        var: u32,
        /// Value slot.
        a: Slot,
        /// Register width.
        w: u16,
    },
    /// Terminal: array element write from a small slot.
    StArrS {
        /// Array index.
        arr: u32,
        /// Small slot holding the element index.
        idx: Slot,
        /// Value slot.
        a: Slot,
        /// Element width.
        w: u16,
    },
    /// Terminal: array element write from a wide slot.
    StArrW {
        /// Array index.
        arr: u32,
        /// Small slot holding the element index.
        idx: Slot,
        /// Value slot.
        a: Slot,
        /// Element width.
        w: u16,
    },
    /// Terminal: array element write from a small slot at a
    /// compile-time-constant index, proven in bounds by
    /// [`crate::opt::Pass::ArrayStrength`] (no index slot to read, no
    /// bounds check to run). Budget-wise identical to [`MOp::StArrS`].
    StArrCS {
        /// Array index.
        arr: u32,
        /// Constant element index.
        idx: u32,
        /// Value slot.
        a: Slot,
        /// Element width.
        w: u16,
    },
    /// Terminal: wide-slot counterpart of [`MOp::StArrCS`].
    StArrCW {
        /// Array index.
        arr: u32,
        /// Constant element index.
        idx: u32,
        /// Value slot.
        a: Slot,
        /// Element width.
        w: u16,
    },
    /// Terminal: output-signal drive from a small slot.
    StSigS {
        /// Signal index.
        sig: u32,
        /// Value slot.
        a: Slot,
        /// Signal width.
        w: u16,
    },
    /// Terminal: output-signal drive from a wide slot.
    StSigW {
        /// Signal index.
        sig: u32,
        /// Value slot.
        a: Slot,
        /// Signal width.
        w: u16,
    },
    /// Terminal: fall through when the slot is non-zero, else jump.
    BranchZ {
        /// Condition slot (small).
        c: Slot,
        /// Micro-op index taken when the condition is zero.
        target: u32,
    },
    /// Terminal: unconditional jump.
    Jmp {
        /// Micro-op target index.
        target: u32,
    },
    /// Terminal: end of clock cycle.
    PauseOp,
    /// Terminal: named program point (index into the thread's label
    /// table).
    LabelOp {
        /// Label table index.
        id: u32,
    },
    /// Terminal: debug extension point.
    ExtOp {
        /// Extension-point id.
        id: u32,
    },
    /// Terminal: thread stops.
    HaltOp,
}

impl MOp {
    /// The scratch slot this op defines, with its file (`true` = wide).
    /// Terminals define nothing.
    pub(crate) fn dst(&self) -> Option<(Slot, bool)> {
        use MOp::*;
        match self {
            ConstS { dst, .. }
            | LdVarS { dst, .. }
            | LdSigS { dst, .. }
            | LdArrS { dst, .. }
            | LdArrCS { dst, .. }
            | LdArrPairS { dst, .. }
            | LdArrPairCS { dst, .. }
            | ConcatLdS { dst, .. }
            | ConcatLdCS { dst, .. }
            | CopyS { dst, .. }
            | Narrow { dst, .. }
            | MaskS { dst, .. }
            | NotS { dst, .. }
            | NegS { dst, .. }
            | RedOrS { dst, .. }
            | RedOrW { dst, .. }
            | BinS { dst, .. }
            | CmpS { dst, .. }
            | ShlS { dst, .. }
            | ShrS { dst, .. }
            | ConcatS { dst, .. }
            | SliceS { dst, .. }
            | SliceWS { dst, .. }
            | CmpW { dst, .. }
            | MuxS { dst, .. } => Some((*dst, false)),
            ConstW { dst, .. }
            | LdVarW { dst, .. }
            | LdSigW { dst, .. }
            | LdArrW { dst, .. }
            | LdArrCW { dst, .. }
            | CopyW { dst, .. }
            | Widen { dst, .. }
            | ResizeW { dst, .. }
            | NotW { dst, .. }
            | NegW { dst, .. }
            | BinW { dst, .. }
            | ShlW { dst, .. }
            | ShrW { dst, .. }
            | ConcatW { dst, .. }
            | SliceW { dst, .. }
            | MuxW { dst, .. } => Some((*dst, true)),
            StVarS { .. }
            | StVarW { .. }
            | StArrS { .. }
            | StArrW { .. }
            | StArrCS { .. }
            | StArrCW { .. }
            | StSigS { .. }
            | StSigW { .. }
            | BranchZ { .. }
            | Jmp { .. }
            | PauseOp
            | LabelOp { .. }
            | ExtOp { .. }
            | HaltOp => None,
        }
    }

    /// Visits every scratch-slot operand as `(&mut slot, wide)`.
    pub(crate) fn uses_mut(&mut self, f: &mut dyn FnMut(&mut Slot, bool)) {
        use MOp::*;
        match self {
            ConstS { .. }
            | ConstW { .. }
            | LdVarS { .. }
            | LdVarW { .. }
            | LdSigS { .. }
            | LdSigW { .. }
            | LdArrCS { .. }
            | LdArrCW { .. }
            | LdArrPairCS { .. }
            | Jmp { .. }
            | PauseOp
            | LabelOp { .. }
            | ExtOp { .. }
            | HaltOp => {}
            LdArrS { idx, .. } | LdArrW { idx, .. } | LdArrPairS { idx, .. } => f(idx, false),
            ConcatLdS { a, idx, .. } => {
                f(a, false);
                f(idx, false);
            }
            ConcatLdCS { a, .. } => f(a, false),
            CopyS { a, .. }
            | MaskS { a, .. }
            | NotS { a, .. }
            | NegS { a, .. }
            | RedOrS { a, .. }
            | SliceS { a, .. }
            | Widen { a, .. }
            | StVarS { a, .. }
            | StArrCS { a, .. }
            | StSigS { a, .. } => f(a, false),
            CopyW { a, .. }
            | Narrow { a, .. }
            | ResizeW { a, .. }
            | NotW { a, .. }
            | NegW { a, .. }
            | RedOrW { a, .. }
            | SliceWS { a, .. }
            | SliceW { a, .. }
            | StVarW { a, .. }
            | StArrCW { a, .. }
            | StSigW { a, .. } => f(a, true),
            BinS { a, b, .. }
            | CmpS { a, b, .. }
            | ShlS { a, b, .. }
            | ShrS { a, b, .. }
            | ConcatS { a, b, .. } => {
                f(a, false);
                f(b, false);
            }
            BinW { a, b, .. } | CmpW { a, b, .. } | ConcatW { a, b, .. } => {
                f(a, true);
                f(b, true);
            }
            ShlW { a, b, .. } | ShrW { a, b, .. } => {
                f(a, true);
                f(b, false);
            }
            MuxS { c, t, e, .. } => {
                f(c, false);
                f(t, false);
                f(e, false);
            }
            MuxW { c, t, e, .. } => {
                f(c, false);
                f(t, true);
                f(e, true);
            }
            StArrS { idx, a, .. } => {
                f(idx, false);
                f(a, false);
            }
            StArrW { idx, a, .. } => {
                f(idx, false);
                f(a, true);
            }
            BranchZ { c, .. } => f(c, false),
        }
    }

    /// Visits every scratch-slot operand as `(slot, wide)`.
    pub(crate) fn uses(&self, f: &mut dyn FnMut(Slot, bool)) {
        let mut me = self.clone();
        me.uses_mut(&mut |s, w| f(*s, w));
    }

    /// Mutable access to the destination slot, with its file
    /// (`true` = wide). Mirror of [`MOp::dst`]; the region-widening
    /// renumbering in [`crate::opt`] uses it to shift whole slot ranges.
    pub(crate) fn dst_mut(&mut self) -> Option<(&mut Slot, bool)> {
        use MOp::*;
        match self {
            ConstS { dst, .. }
            | LdVarS { dst, .. }
            | LdSigS { dst, .. }
            | LdArrS { dst, .. }
            | LdArrCS { dst, .. }
            | LdArrPairS { dst, .. }
            | LdArrPairCS { dst, .. }
            | ConcatLdS { dst, .. }
            | ConcatLdCS { dst, .. }
            | CopyS { dst, .. }
            | Narrow { dst, .. }
            | MaskS { dst, .. }
            | NotS { dst, .. }
            | NegS { dst, .. }
            | RedOrS { dst, .. }
            | RedOrW { dst, .. }
            | BinS { dst, .. }
            | CmpS { dst, .. }
            | ShlS { dst, .. }
            | ShrS { dst, .. }
            | ConcatS { dst, .. }
            | SliceS { dst, .. }
            | SliceWS { dst, .. }
            | CmpW { dst, .. }
            | MuxS { dst, .. } => Some((dst, false)),
            ConstW { dst, .. }
            | LdVarW { dst, .. }
            | LdSigW { dst, .. }
            | LdArrW { dst, .. }
            | LdArrCW { dst, .. }
            | CopyW { dst, .. }
            | Widen { dst, .. }
            | ResizeW { dst, .. }
            | NotW { dst, .. }
            | NegW { dst, .. }
            | BinW { dst, .. }
            | ShlW { dst, .. }
            | ShrW { dst, .. }
            | ConcatW { dst, .. }
            | SliceW { dst, .. }
            | MuxW { dst, .. } => Some((dst, true)),
            StVarS { .. }
            | StVarW { .. }
            | StArrS { .. }
            | StArrW { .. }
            | StArrCS { .. }
            | StArrCW { .. }
            | StSigS { .. }
            | StSigW { .. }
            | BranchZ { .. }
            | Jmp { .. }
            | PauseOp
            | LabelOp { .. }
            | ExtOp { .. }
            | HaltOp => None,
        }
    }
}

// ---------------------------------------------------------------------
// Compiled containers
// ---------------------------------------------------------------------

/// One widened optimization region of a compiled thread, with the
/// summary of its externally visible effects.
///
/// Lowering initially produces one region per source statement; the
/// observer-visibility analysis in [`crate::opt`] then merges runs of
/// consecutive statements whose boundaries no branch targets and whose
/// terminals cannot let the outside world *mutate* machine state
/// (observer callbacks and signal drives only read; `pause` and `ext`
/// hand control to the environment and therefore end a region). Passes
/// optimize freely inside one widened region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionInfo {
    /// First micro-op of the region (index into `mops`).
    pub start: u32,
    /// Half-open range of source-op indices the region covers.
    pub stmts: (u32, u32),
    /// Human-readable visibility summary: which vars/signals/arrays the
    /// region exposes to observers and the environment, and how it ends.
    pub vis: String,
}

/// One thread lowered to micro-ops.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledThread {
    /// Thread name, copied from the source thread.
    pub name: String,
    /// The micro-op stream (branch targets are micro-op indices).
    pub mops: Vec<MOp>,
    /// Label strings referenced by [`MOp::LabelOp`].
    pub labels: Vec<String>,
    /// Small (`u64`) scratch slots required.
    pub n_small: usize,
    /// Wide ([`Bits`]) scratch slots required.
    pub n_wide: usize,
    /// Widened optimization regions, in program order (annotation and
    /// diagnostics; execution never consults this).
    pub regions: Vec<RegionInfo>,
}

/// A program lowered to micro-op bytecode: declarations plus one
/// [`CompiledThread`] per source thread.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// The source declarations (shared with every other backend).
    pub prog: Program,
    /// One entry per source thread.
    pub threads: Vec<CompiledThread>,
}

/// Lowers a flattened program through the ambient optimization pipeline:
/// [`crate::opt::default_pipeline`] unless the `EMU_CPU_PASSES`
/// environment variable overrides it (see [`crate::opt::env_pipeline`]).
/// Callers that must pin an exact pipeline regardless of the environment
/// use [`compile_with_passes`].
pub fn compile(flat: &FlatProgram) -> IrResult<CompiledProgram> {
    compile_with_passes(flat, &crate::opt::env_pipeline())
}

/// Lowers a flattened program, running exactly the given passes — the
/// hook the pass-pipeline tests use (`&[]` gives the naive lowering).
///
/// When the `EMU_CPU_DUMP_MOPS` environment variable is set (to
/// anything non-empty), every compiled thread's annotated listing is
/// dumped to stderr — the quickest way to see what the pass pipeline
/// did to a service.
pub fn compile_with_passes(
    flat: &FlatProgram,
    passes: &[crate::opt::Pass],
) -> IrResult<CompiledProgram> {
    let mut threads = Vec::with_capacity(flat.threads.len());
    for t in &flat.threads {
        threads.push(compile_thread(t, &flat.prog, passes)?);
    }
    let cp = CompiledProgram {
        prog: flat.prog.clone(),
        threads,
    };
    if std::env::var("EMU_CPU_DUMP_MOPS").is_ok_and(|v| !v.is_empty()) {
        for t in &cp.threads {
            eprintln!("{}", mops_to_string(t, &cp.prog));
        }
    }
    Ok(cp)
}

/// A compile-time value: which slot it lives in, its exact width, and
/// which scratch file holds it.
#[derive(Debug, Clone, Copy)]
struct Val {
    slot: Slot,
    w: u16,
    wide: bool,
}

struct ThreadCompiler<'a> {
    prog: &'a Program,
    cur: Vec<MOp>,
    labels: Vec<String>,
    next_small: Slot,
    next_wide: Slot,
}

impl<'a> ThreadCompiler<'a> {
    fn s(&mut self) -> Slot {
        let s = self.next_small;
        self.next_small += 1;
        s
    }

    fn w(&mut self) -> Slot {
        let s = self.next_wide;
        self.next_wide += 1;
        s
    }

    fn push(&mut self, m: MOp) {
        self.cur.push(m);
    }

    /// Ensures `v` sits in a wide slot resized to exactly `w`.
    fn wide_slot(&mut self, v: Val, w: u16) -> Slot {
        if v.wide && v.w == w {
            return v.slot;
        }
        let dst = self.w();
        if v.wide {
            self.push(MOp::ResizeW { dst, a: v.slot, w });
        } else {
            self.push(MOp::Widen { dst, a: v.slot, w });
        }
        dst
    }

    /// Ensures `v` sits in a wide slot at its own width (for concat
    /// operands, whose widths must be exact).
    fn wide_slot_exact(&mut self, v: Val) -> Slot {
        if v.wide {
            v.slot
        } else {
            let dst = self.w();
            self.push(MOp::Widen {
                dst,
                a: v.slot,
                w: v.w,
            });
            dst
        }
    }

    /// The low 64 bits of `v` in a small slot (array indices and shift
    /// amounts, mirroring `eval`'s `to_u64()`).
    fn low64(&mut self, v: Val) -> Slot {
        if !v.wide {
            return v.slot;
        }
        let dst = self.s();
        self.push(MOp::Narrow {
            dst,
            a: v.slot,
            mask: u64::MAX,
        });
        dst
    }

    /// A small slot whose non-zero-ness equals `v.to_bool()`.
    fn cond_slot(&mut self, v: Val) -> Slot {
        if !v.wide {
            return v.slot;
        }
        let dst = self.s();
        self.push(MOp::RedOrW { dst, a: v.slot });
        dst
    }

    fn expr(&mut self, e: &crate::ast::Expr) -> IrResult<Val> {
        use crate::ast::Expr;
        Ok(match e {
            Expr::Const(b) => {
                let w = b.width();
                if w <= 64 {
                    let dst = self.s();
                    self.push(MOp::ConstS { dst, v: b.to_u64() });
                    Val {
                        slot: dst,
                        w,
                        wide: false,
                    }
                } else {
                    let dst = self.w();
                    self.push(MOp::ConstW { dst, v: b.clone() });
                    Val {
                        slot: dst,
                        w,
                        wide: true,
                    }
                }
            }
            Expr::Var(v) => {
                let w = self
                    .prog
                    .var(*v)
                    .ok_or_else(|| IrError(format!("unknown var {v:?}")))?
                    .width;
                if w <= 64 {
                    let dst = self.s();
                    self.push(MOp::LdVarS { dst, var: v.0 });
                    Val {
                        slot: dst,
                        w,
                        wide: false,
                    }
                } else {
                    let dst = self.w();
                    self.push(MOp::LdVarW { dst, var: v.0 });
                    Val {
                        slot: dst,
                        w,
                        wide: true,
                    }
                }
            }
            Expr::SigRead(s) => {
                let d = self
                    .prog
                    .signal(*s)
                    .ok_or_else(|| IrError(format!("unknown signal {s:?}")))?;
                let out = d.dir == SigDir::Out;
                if d.width <= 64 {
                    let dst = self.s();
                    self.push(MOp::LdSigS { dst, sig: s.0, out });
                    Val {
                        slot: dst,
                        w: d.width,
                        wide: false,
                    }
                } else {
                    let dst = self.w();
                    self.push(MOp::LdSigW { dst, sig: s.0, out });
                    Val {
                        slot: dst,
                        w: d.width,
                        wide: true,
                    }
                }
            }
            Expr::ArrRead(a, idx) => {
                let decl = self
                    .prog
                    .array(*a)
                    .ok_or_else(|| IrError(format!("unknown array {a:?}")))?;
                let (ew, arr) = (decl.elem_width, a.0);
                let iv = self.expr(idx)?;
                let islot = self.low64(iv);
                if ew <= 64 {
                    let dst = self.s();
                    self.push(MOp::LdArrS {
                        dst,
                        arr,
                        idx: islot,
                    });
                    Val {
                        slot: dst,
                        w: ew,
                        wide: false,
                    }
                } else {
                    let dst = self.w();
                    self.push(MOp::LdArrW {
                        dst,
                        arr,
                        idx: islot,
                        w: ew,
                    });
                    Val {
                        slot: dst,
                        w: ew,
                        wide: true,
                    }
                }
            }
            Expr::Un(op, x) => {
                let v = self.expr(x)?;
                match op {
                    UnOp::RedOr => {
                        let dst = self.s();
                        if v.wide {
                            self.push(MOp::RedOrW { dst, a: v.slot });
                        } else {
                            self.push(MOp::RedOrS { dst, a: v.slot });
                        }
                        Val {
                            slot: dst,
                            w: 1,
                            wide: false,
                        }
                    }
                    UnOp::Not | UnOp::Neg => {
                        if v.wide {
                            let dst = self.w();
                            self.push(match op {
                                UnOp::Not => MOp::NotW { dst, a: v.slot },
                                _ => MOp::NegW { dst, a: v.slot },
                            });
                            Val {
                                slot: dst,
                                w: v.w,
                                wide: true,
                            }
                        } else {
                            let dst = self.s();
                            let mask = mask_of(v.w);
                            self.push(match op {
                                UnOp::Not => MOp::NotS {
                                    dst,
                                    a: v.slot,
                                    mask,
                                },
                                _ => MOp::NegS {
                                    dst,
                                    a: v.slot,
                                    mask,
                                },
                            });
                            Val {
                                slot: dst,
                                w: v.w,
                                wide: false,
                            }
                        }
                    }
                }
            }
            Expr::Bin(op, l, r) => {
                let lv = self.expr(l)?;
                let rv = self.expr(r)?;
                match op {
                    // Shifts: the left operand is NOT widened — the
                    // result keeps `wl` and bits shifted past it are
                    // lost (see the shift rule in `crate::ast::BinOp`).
                    BinOp::Shl | BinOp::Shr => {
                        let n = self.low64(rv);
                        if lv.wide {
                            let dst = self.w();
                            self.push(match op {
                                BinOp::Shl => MOp::ShlW {
                                    dst,
                                    a: lv.slot,
                                    b: n,
                                },
                                _ => MOp::ShrW {
                                    dst,
                                    a: lv.slot,
                                    b: n,
                                },
                            });
                            Val {
                                slot: dst,
                                w: lv.w,
                                wide: true,
                            }
                        } else {
                            let dst = self.s();
                            self.push(match op {
                                BinOp::Shl => MOp::ShlS {
                                    dst,
                                    a: lv.slot,
                                    b: n,
                                    mask: mask_of(lv.w),
                                },
                                _ => MOp::ShrS {
                                    dst,
                                    a: lv.slot,
                                    b: n,
                                },
                            });
                            Val {
                                slot: dst,
                                w: lv.w,
                                wide: false,
                            }
                        }
                    }
                    _ if op.is_compare() => {
                        let dst = self.s();
                        if !lv.wide && !rv.wide {
                            self.push(MOp::CmpS {
                                dst,
                                op: *op,
                                a: lv.slot,
                                b: rv.slot,
                            });
                        } else {
                            let w = lv.w.max(rv.w);
                            let a = self.wide_slot(lv, w);
                            let b = self.wide_slot(rv, w);
                            self.push(MOp::CmpW { dst, op: *op, a, b });
                        }
                        Val {
                            slot: dst,
                            w: 1,
                            wide: false,
                        }
                    }
                    _ => {
                        let w = lv.w.max(rv.w);
                        if w <= 64 {
                            let dst = self.s();
                            self.push(MOp::BinS {
                                dst,
                                op: *op,
                                a: lv.slot,
                                b: rv.slot,
                                mask: mask_of(w),
                            });
                            Val {
                                slot: dst,
                                w,
                                wide: false,
                            }
                        } else {
                            let a = self.wide_slot(lv, w);
                            let b = self.wide_slot(rv, w);
                            let dst = self.w();
                            self.push(MOp::BinW { dst, op: *op, a, b });
                            Val {
                                slot: dst,
                                w,
                                wide: true,
                            }
                        }
                    }
                }
            }
            Expr::Mux(c, t, e2) => {
                // Same evaluation order as `eval`: both arms, then the
                // condition (all expressions are pure, so only the
                // values matter).
                let tv = self.expr(t)?;
                let ev = self.expr(e2)?;
                let cv = self.expr(c)?;
                let cond = self.cond_slot(cv);
                let w = tv.w.max(ev.w);
                if w <= 64 {
                    let dst = self.s();
                    self.push(MOp::MuxS {
                        dst,
                        c: cond,
                        t: tv.slot,
                        e: ev.slot,
                    });
                    Val {
                        slot: dst,
                        w,
                        wide: false,
                    }
                } else {
                    let t = self.wide_slot(tv, w);
                    let e = self.wide_slot(ev, w);
                    let dst = self.w();
                    self.push(MOp::MuxW { dst, c: cond, t, e });
                    Val {
                        slot: dst,
                        w,
                        wide: true,
                    }
                }
            }
            Expr::Slice(x, hi, lo) => {
                let v = self.expr(x)?;
                let ow = hi - lo + 1;
                if !v.wide {
                    let dst = self.s();
                    self.push(MOp::SliceS {
                        dst,
                        a: v.slot,
                        lo: *lo,
                        mask: mask_of(ow),
                    });
                    Val {
                        slot: dst,
                        w: ow,
                        wide: false,
                    }
                } else if ow <= 64 {
                    let dst = self.s();
                    self.push(MOp::SliceWS {
                        dst,
                        a: v.slot,
                        lo: *lo,
                        mask: mask_of(ow),
                    });
                    Val {
                        slot: dst,
                        w: ow,
                        wide: false,
                    }
                } else {
                    let dst = self.w();
                    self.push(MOp::SliceW {
                        dst,
                        a: v.slot,
                        hi: *hi,
                        lo: *lo,
                    });
                    Val {
                        slot: dst,
                        w: ow,
                        wide: true,
                    }
                }
            }
            Expr::Concat(h, l) => {
                let hv = self.expr(h)?;
                let lv = self.expr(l)?;
                let w = hv.w + lv.w;
                if w <= 64 {
                    let dst = self.s();
                    self.push(MOp::ConcatS {
                        dst,
                        a: hv.slot,
                        b: lv.slot,
                        bw: lv.w,
                    });
                    Val {
                        slot: dst,
                        w,
                        wide: false,
                    }
                } else {
                    let a = self.wide_slot_exact(hv);
                    let b = self.wide_slot_exact(lv);
                    let dst = self.w();
                    self.push(MOp::ConcatW { dst, a, b });
                    Val {
                        slot: dst,
                        w,
                        wide: true,
                    }
                }
            }
            Expr::Resize(x, w) => {
                let v = self.expr(x)?;
                match (v.wide, *w > 64) {
                    (false, false) => {
                        let dst = self.s();
                        if *w >= v.w {
                            // Zero-extension of a canonical small value
                            // is the identity.
                            self.push(MOp::CopyS { dst, a: v.slot });
                        } else {
                            self.push(MOp::MaskS {
                                dst,
                                a: v.slot,
                                mask: mask_of(*w),
                            });
                        }
                        Val {
                            slot: dst,
                            w: *w,
                            wide: false,
                        }
                    }
                    (false, true) => {
                        let dst = self.w();
                        self.push(MOp::Widen {
                            dst,
                            a: v.slot,
                            w: *w,
                        });
                        Val {
                            slot: dst,
                            w: *w,
                            wide: true,
                        }
                    }
                    (true, false) => {
                        let dst = self.s();
                        self.push(MOp::Narrow {
                            dst,
                            a: v.slot,
                            mask: mask_of(*w),
                        });
                        Val {
                            slot: dst,
                            w: *w,
                            wide: false,
                        }
                    }
                    (true, true) => {
                        let dst = self.w();
                        if *w == v.w {
                            self.push(MOp::CopyW { dst, a: v.slot });
                        } else {
                            self.push(MOp::ResizeW {
                                dst,
                                a: v.slot,
                                w: *w,
                            });
                        }
                        Val {
                            slot: dst,
                            w: *w,
                            wide: true,
                        }
                    }
                }
            }
        })
    }

    /// Compiles one source op into `self.cur` (ending in its terminal).
    fn op(&mut self, op: &Op) -> IrResult<()> {
        match op {
            Op::Assign(dst, e) => {
                let w = self
                    .prog
                    .var(*dst)
                    .ok_or_else(|| IrError(format!("unknown var {dst:?}")))?
                    .width;
                let v = self.expr(e)?;
                self.push(if v.wide {
                    MOp::StVarW {
                        var: dst.0,
                        a: v.slot,
                        w,
                    }
                } else {
                    MOp::StVarS {
                        var: dst.0,
                        a: v.slot,
                        w,
                    }
                });
            }
            Op::ArrWrite(arr, idx, val) => {
                let w = self
                    .prog
                    .array(*arr)
                    .ok_or_else(|| IrError(format!("unknown array {arr:?}")))?
                    .elem_width;
                let iv = self.expr(idx)?;
                let islot = self.low64(iv);
                let v = self.expr(val)?;
                self.push(if v.wide {
                    MOp::StArrW {
                        arr: arr.0,
                        idx: islot,
                        a: v.slot,
                        w,
                    }
                } else {
                    MOp::StArrS {
                        arr: arr.0,
                        idx: islot,
                        a: v.slot,
                        w,
                    }
                });
            }
            Op::SigWrite(sig, e) => {
                let w = self
                    .prog
                    .signal(*sig)
                    .ok_or_else(|| IrError(format!("unknown signal {sig:?}")))?
                    .width;
                let v = self.expr(e)?;
                self.push(if v.wide {
                    MOp::StSigW {
                        sig: sig.0,
                        a: v.slot,
                        w,
                    }
                } else {
                    MOp::StSigS {
                        sig: sig.0,
                        a: v.slot,
                        w,
                    }
                });
            }
            Op::Branch(c, if_false) => {
                let cv = self.expr(c)?;
                let cond = self.cond_slot(cv);
                self.push(MOp::BranchZ {
                    c: cond,
                    target: *if_false as u32,
                });
            }
            Op::Jump(t) => self.push(MOp::Jmp { target: *t as u32 }),
            Op::Pause => self.push(MOp::PauseOp),
            Op::Label(name) => {
                let id = self.labels.len() as u32;
                self.labels.push(name.clone());
                self.push(MOp::LabelOp { id });
            }
            Op::ExtPoint(id) => self.push(MOp::ExtOp { id: *id }),
            Op::Halt => self.push(MOp::HaltOp),
        }
        Ok(())
    }
}

/// Compiles one thread: lower each source op into a region, optimize the
/// regions, then flatten and retarget branches to micro-op indices.
fn compile_thread(
    t: &FlatThread,
    prog: &Program,
    passes: &[crate::opt::Pass],
) -> IrResult<CompiledThread> {
    t.check_targets()?;
    let mut c = ThreadCompiler {
        prog,
        cur: Vec::new(),
        labels: Vec::new(),
        next_small: 0,
        next_wide: 0,
    };
    // One region per source op; scratch slots are written-before-read
    // within a region (fresh slots per statement), which is the
    // invariant the passes rely on.
    let mut regions: Vec<Vec<MOp>> = Vec::with_capacity(t.ops.len());
    for op in &t.ops {
        c.next_small = 0;
        c.next_wide = 0;
        c.op(op)?;
        regions.push(std::mem::take(&mut c.cur));
    }

    // Observer-visibility widening: merge statement runs that no branch
    // targets and that contain no point where the outside world can
    // mutate state (pause/ext). Merged tails become empty vecs, so the
    // `starts` bookkeeping below still maps every *reachable* source-op
    // index to the right micro-op. Slot renumbering restores the
    // written-once-before-read invariant across each widened region.
    crate::opt::widen_regions(&mut regions);

    crate::opt::run(&mut regions, passes, prog);

    // Flatten, recording region starts, then retarget branches from
    // source-op indices to micro-op indices (a target equal to the op
    // count maps past the end, which the executor treats as halt).
    let mut starts = Vec::with_capacity(regions.len() + 1);
    let mut mops = Vec::new();
    for r in &regions {
        starts.push(mops.len() as u32);
        mops.extend(r.iter().cloned());
    }
    starts.push(mops.len() as u32);

    // Region table: every non-empty region is a widened-region head
    // (merged tails were drained into their head), covering the source
    // statements up to the next head.
    let mut region_info = Vec::new();
    let heads: Vec<usize> = (0..regions.len())
        .filter(|&i| !regions[i].is_empty())
        .collect();
    for (k, &h) in heads.iter().enumerate() {
        let end = heads.get(k + 1).copied().unwrap_or(regions.len());
        region_info.push(RegionInfo {
            start: starts[h],
            stmts: (h as u32, end as u32),
            vis: region_visibility(&regions[h], prog, &c.labels),
        });
    }
    for m in &mut mops {
        match m {
            MOp::BranchZ { target, .. } | MOp::Jmp { target, .. } => {
                *target = starts[*target as usize];
            }
            _ => {}
        }
    }

    // Scratch-file sizes: the passes may have shrunk them.
    let (mut n_small, mut n_wide) = (0usize, 0usize);
    for m in &mops {
        let mut bump = |s: Slot, wide: bool| {
            let n = if wide { &mut n_wide } else { &mut n_small };
            *n = (*n).max(s as usize + 1);
        };
        if let Some((d, wide)) = m.dst() {
            bump(d, wide);
        }
        m.uses(&mut |s, wide| bump(s, wide));
    }

    Ok(CompiledThread {
        name: t.name.clone(),
        mops,
        labels: c.labels,
        n_small,
        n_wide,
        regions: region_info,
    })
}

/// Summarizes what a widened region exposes to the outside world: vars
/// whose assignments observers see, signals it drives, arrays it
/// writes, and the terminal that ends it. This is the output of the
/// visibility analysis rendered for listings and debug dumps.
fn region_visibility(region: &[MOp], prog: &Program, labels: &[String]) -> String {
    let mut tags: Vec<String> = Vec::new();
    let add = |t: String, tags: &mut Vec<String>| {
        if !tags.contains(&t) {
            tags.push(t);
        }
    };
    let var = |i: u32| {
        prog.vars()
            .get(i as usize)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("?v{i}"))
    };
    for m in region {
        match m {
            MOp::StVarS { var: v, .. } | MOp::StVarW { var: v, .. } => {
                add(format!("var {}", var(*v)), &mut tags)
            }
            MOp::StSigS { sig, .. } | MOp::StSigW { sig, .. } => {
                let name = prog
                    .signals()
                    .get(*sig as usize)
                    .map(|d| d.name.clone())
                    .unwrap_or_else(|| format!("?s{sig}"));
                add(format!("${name}"), &mut tags);
            }
            MOp::StArrS { arr, .. }
            | MOp::StArrW { arr, .. }
            | MOp::StArrCS { arr, .. }
            | MOp::StArrCW { arr, .. } => {
                let name = prog
                    .arrays()
                    .get(*arr as usize)
                    .map(|d| d.name.clone())
                    .unwrap_or_else(|| format!("?a{arr}"));
                add(format!("{name}[.]"), &mut tags);
            }
            MOp::LabelOp { id } => add(
                format!(
                    "label {}",
                    labels.get(*id as usize).cloned().unwrap_or_default()
                ),
                &mut tags,
            ),
            MOp::BranchZ { .. } => add("branch".into(), &mut tags),
            MOp::Jmp { .. } => add("jump".into(), &mut tags),
            MOp::PauseOp => add("pause(env)".into(), &mut tags),
            MOp::ExtOp { .. } => add("ext(env)".into(), &mut tags),
            MOp::HaltOp => add("halt".into(), &mut tags),
            _ => {}
        }
    }
    if tags.is_empty() {
        "internal".into()
    } else {
        tags.join(", ")
    }
}

// ---------------------------------------------------------------------
// Pretty printing (pass-pipeline diagnostics and tests)
// ---------------------------------------------------------------------

/// Renders a compiled thread as a numbered micro-op listing. Small slots
/// print as `sN`, wide slots as `wN`; this is the form the pass tests in
/// [`crate::opt`] assert against.
pub fn mops_to_string(t: &CompiledThread, prog: &Program) -> String {
    use std::fmt::Write as _;
    let var = |i: u32| {
        prog.vars()
            .get(i as usize)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("?v{i}"))
    };
    let arr = |i: u32| {
        prog.arrays()
            .get(i as usize)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("?a{i}"))
    };
    let sig = |i: u32| {
        prog.signals()
            .get(i as usize)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("?s{i}"))
    };
    let mut out = format!(
        "compiled thread {} ({} small, {} wide):\n",
        t.name, t.n_small, t.n_wide
    );
    let mut next_region = 0usize;
    for (i, m) in t.mops.iter().enumerate() {
        while let Some(r) = t.regions.get(next_region) {
            if r.start as usize != i {
                break;
            }
            let _ = writeln!(
                out,
                "  -- region stmts {}..{} | vis: {}",
                r.stmts.0, r.stmts.1, r.vis
            );
            next_region += 1;
        }
        let body = match m {
            MOp::ConstS { dst, v } => format!("s{dst} <- const {v:#x}"),
            MOp::ConstW { dst, v } => format!("w{dst} <- const {v}"),
            MOp::LdVarS { dst, var: v } => format!("s{dst} <- var {}", var(*v)),
            MOp::LdVarW { dst, var: v } => format!("w{dst} <- var {}", var(*v)),
            MOp::LdSigS { dst, sig: s, out } => {
                format!(
                    "s{dst} <- sig{} {}",
                    if *out { "_out" } else { "" },
                    sig(*s)
                )
            }
            MOp::LdSigW { dst, sig: s, out } => {
                format!(
                    "w{dst} <- sig{} {}",
                    if *out { "_out" } else { "" },
                    sig(*s)
                )
            }
            MOp::LdArrS { dst, arr: a, idx } => format!("s{dst} <- {}[s{idx}]", arr(*a)),
            MOp::LdArrW {
                dst, arr: a, idx, ..
            } => format!("w{dst} <- {}[s{idx}]", arr(*a)),
            MOp::LdArrCS { dst, arr: a, idx } => format!("s{dst} <- {}[#{idx}]", arr(*a)),
            MOp::LdArrCW { dst, arr: a, idx } => format!("w{dst} <- {}[#{idx}]", arr(*a)),
            MOp::LdArrPairS {
                dst,
                idx,
                arr: a,
                off,
                mask,
                bw,
            } => {
                let n = arr(*a);
                format!("s{dst} <- {{{n}[(s{idx}+{off:#x}) & {mask:#x}], {n}[+1]:u{bw}}}")
            }
            MOp::LdArrPairCS {
                dst,
                arr: a,
                idx,
                bw,
            } => {
                let n = arr(*a);
                format!("s{dst} <- {{{n}[#{idx}], {n}[#{}]:u{bw}}}", idx + 1)
            }
            MOp::ConcatLdS {
                dst,
                a: hi,
                arr: a,
                idx,
                bw,
            } => format!("s{dst} <- {{s{hi}, {}[s{idx}]:u{bw}}}", arr(*a)),
            MOp::ConcatLdCS {
                dst,
                a: hi,
                arr: a,
                idx,
                bw,
            } => format!("s{dst} <- {{s{hi}, {}[#{idx}]:u{bw}}}", arr(*a)),
            MOp::CopyS { dst, a } => format!("s{dst} <- s{a}"),
            MOp::CopyW { dst, a } => format!("w{dst} <- w{a}"),
            MOp::Widen { dst, a, w } => format!("w{dst} <- widen s{a} to u{w}"),
            MOp::Narrow { dst, a, mask } => format!("s{dst} <- narrow w{a} & {mask:#x}"),
            MOp::MaskS { dst, a, mask } => format!("s{dst} <- s{a} & {mask:#x}"),
            MOp::ResizeW { dst, a, w } => format!("w{dst} <- resize w{a} to u{w}"),
            MOp::NotS { dst, a, mask } => format!("s{dst} <- ~s{a} & {mask:#x}"),
            MOp::NegS { dst, a, mask } => format!("s{dst} <- -s{a} & {mask:#x}"),
            MOp::RedOrS { dst, a } => format!("s{dst} <- |s{a}"),
            MOp::NotW { dst, a } => format!("w{dst} <- ~w{a}"),
            MOp::NegW { dst, a } => format!("w{dst} <- -w{a}"),
            MOp::RedOrW { dst, a } => format!("s{dst} <- |w{a}"),
            MOp::BinS {
                dst,
                op,
                a,
                b,
                mask,
            } => format!("s{dst} <- s{a} {op:?} s{b} & {mask:#x}"),
            MOp::CmpS { dst, op, a, b } => format!("s{dst} <- s{a} {op:?} s{b}"),
            MOp::ShlS { dst, a, b, mask } => format!("s{dst} <- s{a} << s{b} & {mask:#x}"),
            MOp::ShrS { dst, a, b } => format!("s{dst} <- s{a} >> s{b}"),
            MOp::ConcatS { dst, a, b, bw } => format!("s{dst} <- {{s{a}, s{b}:u{bw}}}"),
            MOp::SliceS { dst, a, lo, mask } => format!("s{dst} <- s{a} >> {lo} & {mask:#x}"),
            MOp::SliceWS { dst, a, lo, mask } => format!("s{dst} <- w{a} >> {lo} & {mask:#x}"),
            MOp::SliceW { dst, a, hi, lo } => format!("w{dst} <- w{a}[{hi}:{lo}]"),
            MOp::BinW { dst, op, a, b } => format!("w{dst} <- w{a} {op:?} w{b}"),
            MOp::CmpW { dst, op, a, b } => format!("s{dst} <- w{a} {op:?} w{b}"),
            MOp::ShlW { dst, a, b } => format!("w{dst} <- w{a} << s{b}"),
            MOp::ShrW { dst, a, b } => format!("w{dst} <- w{a} >> s{b}"),
            MOp::ConcatW { dst, a, b } => format!("w{dst} <- {{w{a}, w{b}}}"),
            MOp::MuxS { dst, c, t, e } => format!("s{dst} <- s{c} ? s{t} : s{e}"),
            MOp::MuxW { dst, c, t, e } => format!("w{dst} <- s{c} ? w{t} : w{e}"),
            MOp::StVarS { var: v, a, .. } => format!("var {} := s{a}", var(*v)),
            MOp::StVarW { var: v, a, .. } => format!("var {} := w{a}", var(*v)),
            MOp::StArrCS {
                arr: ar, idx, a, ..
            } => format!("{}[#{idx}] := s{a}", arr(*ar)),
            MOp::StArrCW {
                arr: ar, idx, a, ..
            } => format!("{}[#{idx}] := w{a}", arr(*ar)),
            MOp::StArrS {
                arr: ar, idx, a, ..
            } => format!("{}[s{idx}] := s{a}", arr(*ar)),
            MOp::StArrW {
                arr: ar, idx, a, ..
            } => format!("{}[s{idx}] := w{a}", arr(*ar)),
            MOp::StSigS { sig: s, a, .. } => format!("${} := s{a}", sig(*s)),
            MOp::StSigW { sig: s, a, .. } => format!("${} := w{a}", sig(*s)),
            MOp::BranchZ { c, target } => format!("brz s{c} -> {target}"),
            MOp::Jmp { target } => format!("jmp -> {target}"),
            MOp::PauseOp => "pause".into(),
            MOp::LabelOp { id } => format!(
                "label {}",
                t.labels.get(*id as usize).cloned().unwrap_or_default()
            ),
            MOp::ExtOp { id } => format!("ext #{id}"),
            MOp::HaltOp => "halt".into(),
        };
        let _ = writeln!(out, "  {i:4}: {body}");
    }
    out
}

// ---------------------------------------------------------------------
// The executor
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct ThreadCtx {
    pc: usize,
    halted: bool,
}

/// Micro-op executor for one compiled program — the fast software
/// backend, a drop-in for [`crate::interp::Machine`].
pub struct CompiledMachine {
    cp: CompiledProgram,
    state: MachineState,
    threads: Vec<ThreadCtx>,
    small: Vec<u64>,
    wide: Vec<Bits>,
    cycle: u64,
    ops_executed: u64,
    /// Abort threshold for a single thread-cycle without a pause,
    /// counted in *source* ops (terminals), identical to the
    /// tree-walker's accounting.
    pub max_ops_per_cycle: u64,
}

impl CompiledMachine {
    /// Builds a machine from compiled bytecode.
    pub fn new(cp: CompiledProgram) -> Self {
        let state = MachineState::init(&cp.prog);
        let threads = cp
            .threads
            .iter()
            .map(|_| ThreadCtx {
                pc: 0,
                halted: false,
            })
            .collect();
        let n_small = cp.threads.iter().map(|t| t.n_small).max().unwrap_or(0);
        let n_wide = cp.threads.iter().map(|t| t.n_wide).max().unwrap_or(0);
        CompiledMachine {
            small: vec![0; n_small],
            wide: vec![Bits::zero(1); n_wide],
            state,
            threads,
            cycle: 0,
            ops_executed: 0,
            max_ops_per_cycle: 100_000,
            cp,
        }
    }

    /// Flattens and compiles `prog` in one step.
    pub fn from_program(prog: &Program) -> IrResult<Self> {
        Ok(CompiledMachine::new(compile(&crate::flat::flatten(prog)?)?))
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.cp.prog
    }

    /// The compiled bytecode.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.cp
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total source-level ops executed (matches the tree-walker's count
    /// for the same run).
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Immutable state access.
    pub fn state(&self) -> &MachineState {
        &self.state
    }

    /// Mutable state access (environment-side pokes between cycles).
    pub fn state_mut(&mut self) -> &mut MachineState {
        &mut self.state
    }

    /// True when every thread has halted.
    pub fn halted(&self) -> bool {
        self.threads.iter().all(|t| t.halted)
    }

    /// Runs one clock cycle: each live thread executes until it pauses
    /// or halts, then `env.tick` runs once — the exact contract of
    /// [`crate::interp::Machine::step_cycle`].
    pub fn step_cycle(&mut self, env: &mut dyn Env, obs: &mut dyn Observer) -> IrResult<()> {
        self.step_cycle_with(env, obs)
    }

    /// [`CompiledMachine::step_cycle`], generic over the environment and
    /// observer. Calling it with concrete types (e.g. `NullObserver` and
    /// a known environment) monomorphizes the executor's hot loop —
    /// observer hooks inline away entirely — which is what the batched
    /// frame path in the drivers builds on. Passing trait objects is
    /// also fine (`?Sized`); that is exactly what `step_cycle` does.
    pub fn step_cycle_with<E: Env + ?Sized, O: Observer + ?Sized>(
        &mut self,
        env: &mut E,
        obs: &mut O,
    ) -> IrResult<()> {
        for ti in 0..self.threads.len() {
            self.run_thread_to_pause(ti, obs)?;
        }
        self.cycle += 1;
        env.tick(self.cycle, &self.cp.prog, &mut self.state);
        Ok(())
    }

    /// Runs `n` cycles (stops early if all threads halt).
    pub fn run_cycles(
        &mut self,
        n: u64,
        env: &mut dyn Env,
        obs: &mut dyn Observer,
    ) -> IrResult<u64> {
        for i in 0..n {
            if self.halted() {
                return Ok(i);
            }
            self.step_cycle(env, obs)?;
        }
        Ok(n)
    }

    // `budget` is deliberately decremented even by terminals that return
    // (pause/halt), so op accounting matches the tree-walker exactly.
    #[allow(unused_assignments)]
    fn run_thread_to_pause<O: Observer + ?Sized>(
        &mut self,
        ti: usize,
        obs: &mut O,
    ) -> IrResult<()> {
        if self.threads[ti].halted {
            return Ok(());
        }
        let max_ops = self.max_ops_per_cycle;
        let CompiledMachine {
            cp,
            state,
            threads,
            small,
            wide,
            ops_executed,
            ..
        } = self;
        let thread = &cp.threads[ti];
        let ctx = &mut threads[ti];
        let mops = &thread.mops[..];
        let mut pc = ctx.pc;
        let mut budget = max_ops;

        // One budget unit per *terminal* (= one source op), so op counts
        // and missing-pause traps match the tree-walker exactly.
        macro_rules! tick {
            () => {
                *ops_executed += 1;
                budget = budget.checked_sub(1).ok_or_else(|| {
                    IrError(format!(
                        "thread {} exceeded {} ops without pausing (missing pause()?)",
                        thread.name, max_ops
                    ))
                })?;
            };
        }

        loop {
            let Some(op) = mops.get(pc) else {
                ctx.pc = pc;
                ctx.halted = true;
                return Ok(());
            };
            match op {
                MOp::ConstS { dst, v } => small[*dst as usize] = *v,
                MOp::ConstW { dst, v } => wide[*dst as usize] = v.clone(),
                MOp::LdVarS { dst, var } => {
                    small[*dst as usize] = state.vars[*var as usize].to_u64()
                }
                MOp::LdVarW { dst, var } => wide[*dst as usize] = state.vars[*var as usize].clone(),
                MOp::LdSigS { dst, sig, out } => {
                    let sigs = if *out {
                        &state.sigs_out
                    } else {
                        &state.sigs_in
                    };
                    small[*dst as usize] = sigs[*sig as usize].to_u64();
                }
                MOp::LdSigW { dst, sig, out } => {
                    let sigs = if *out {
                        &state.sigs_out
                    } else {
                        &state.sigs_in
                    };
                    wide[*dst as usize] = sigs[*sig as usize].clone();
                }
                MOp::LdArrS { dst, arr, idx } => {
                    let i = small[*idx as usize] as usize;
                    small[*dst as usize] = state.arrays[*arr as usize]
                        .get(i)
                        .map(|b| b.to_u64())
                        .unwrap_or(0);
                }
                MOp::LdArrW { dst, arr, idx, w } => {
                    let i = small[*idx as usize] as usize;
                    wide[*dst as usize] = state.arrays[*arr as usize]
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| Bits::zero(*w));
                }
                // Const-index loads are proven in bounds at compile
                // time (array lengths are fixed at declaration).
                MOp::LdArrCS { dst, arr, idx } => {
                    small[*dst as usize] = state.arrays[*arr as usize][*idx as usize].to_u64()
                }
                MOp::LdArrCW { dst, arr, idx } => {
                    wide[*dst as usize] = state.arrays[*arr as usize][*idx as usize].clone()
                }
                MOp::LdArrPairS {
                    dst,
                    idx,
                    arr,
                    off,
                    mask,
                    bw,
                } => {
                    let a = &state.arrays[*arr as usize];
                    let i = small[*idx as usize].wrapping_add(*off) & mask;
                    let hi = a.get(i as usize).map(|b| b.to_u64()).unwrap_or(0);
                    let j = i.wrapping_add(1) & mask;
                    let lo = a.get(j as usize).map(|b| b.to_u64()).unwrap_or(0);
                    small[*dst as usize] = (hi << bw) | lo;
                }
                MOp::LdArrPairCS { dst, arr, idx, bw } => {
                    let a = &state.arrays[*arr as usize];
                    let i = *idx as usize;
                    small[*dst as usize] = (a[i].to_u64() << bw) | a[i + 1].to_u64();
                }
                MOp::ConcatLdS {
                    dst,
                    a,
                    arr,
                    idx,
                    bw,
                } => {
                    let lo = state.arrays[*arr as usize]
                        .get(small[*idx as usize] as usize)
                        .map(|b| b.to_u64())
                        .unwrap_or(0);
                    small[*dst as usize] = (small[*a as usize] << bw) | lo;
                }
                MOp::ConcatLdCS {
                    dst,
                    a,
                    arr,
                    idx,
                    bw,
                } => {
                    small[*dst as usize] = (small[*a as usize] << bw)
                        | state.arrays[*arr as usize][*idx as usize].to_u64();
                }
                MOp::CopyS { dst, a } => small[*dst as usize] = small[*a as usize],
                MOp::CopyW { dst, a } => wide[*dst as usize] = wide[*a as usize].clone(),
                MOp::Widen { dst, a, w } => {
                    wide[*dst as usize] = Bits::from_u64(small[*a as usize], *w)
                }
                MOp::Narrow { dst, a, mask } => {
                    small[*dst as usize] = wide[*a as usize].to_u64() & mask
                }
                MOp::MaskS { dst, a, mask } => small[*dst as usize] = small[*a as usize] & mask,
                MOp::ResizeW { dst, a, w } => wide[*dst as usize] = wide[*a as usize].resize(*w),
                MOp::NotS { dst, a, mask } => small[*dst as usize] = !small[*a as usize] & mask,
                MOp::NegS { dst, a, mask } => {
                    small[*dst as usize] = small[*a as usize].wrapping_neg() & mask
                }
                MOp::RedOrS { dst, a } => small[*dst as usize] = u64::from(small[*a as usize] != 0),
                MOp::NotW { dst, a } => wide[*dst as usize] = wide[*a as usize].not(),
                MOp::NegW { dst, a } => {
                    let v = &wide[*a as usize];
                    wide[*dst as usize] = Bits::zero(v.width()).wrapping_sub(v);
                }
                MOp::RedOrW { dst, a } => {
                    small[*dst as usize] = u64::from(!wide[*a as usize].is_zero())
                }
                MOp::BinS {
                    dst,
                    op,
                    a,
                    b,
                    mask,
                } => {
                    small[*dst as usize] = bin_s(*op, small[*a as usize], small[*b as usize], *mask)
                }
                MOp::CmpS { dst, op, a, b } => {
                    small[*dst as usize] = cmp_s(*op, small[*a as usize], small[*b as usize])
                }
                MOp::ShlS { dst, a, b, mask } => {
                    small[*dst as usize] = shl_s(small[*a as usize], small[*b as usize], *mask)
                }
                MOp::ShrS { dst, a, b } => {
                    small[*dst as usize] = shr_s(small[*a as usize], small[*b as usize])
                }
                MOp::ConcatS { dst, a, b, bw } => {
                    small[*dst as usize] = (small[*a as usize] << bw) | small[*b as usize]
                }
                MOp::SliceS { dst, a, lo, mask } => {
                    small[*dst as usize] = (small[*a as usize] >> lo) & mask
                }
                MOp::SliceWS { dst, a, lo, mask } => {
                    small[*dst as usize] = wide[*a as usize].shr(u32::from(*lo)).to_u64() & mask
                }
                MOp::SliceW { dst, a, hi, lo } => {
                    wide[*dst as usize] = wide[*a as usize].slice(*hi, *lo)
                }
                MOp::BinW { dst, op, a, b } => {
                    wide[*dst as usize] = bin_w(*op, &wide[*a as usize], &wide[*b as usize])
                }
                MOp::CmpW { dst, op, a, b } => {
                    small[*dst as usize] = cmp_w(*op, &wide[*a as usize], &wide[*b as usize])
                }
                MOp::ShlW { dst, a, b } => {
                    wide[*dst as usize] = wide[*a as usize].shl(shift_amount(small[*b as usize]))
                }
                MOp::ShrW { dst, a, b } => {
                    wide[*dst as usize] = wide[*a as usize].shr(shift_amount(small[*b as usize]))
                }
                MOp::ConcatW { dst, a, b } => {
                    wide[*dst as usize] = wide[*a as usize].concat(&wide[*b as usize])
                }
                MOp::MuxS { dst, c, t, e } => {
                    small[*dst as usize] = if small[*c as usize] != 0 {
                        small[*t as usize]
                    } else {
                        small[*e as usize]
                    }
                }
                MOp::MuxW { dst, c, t, e } => {
                    let src = if small[*c as usize] != 0 { t } else { e };
                    wide[*dst as usize] = wide[*src as usize].clone();
                }
                MOp::StVarS { var, a, w } => {
                    tick!();
                    let new = Bits::from_u64(small[*a as usize], *w);
                    let i = *var as usize;
                    obs.on_assign(*var, &state.vars[i], &new);
                    state.vars[i] = new;
                }
                MOp::StVarW { var, a, w } => {
                    tick!();
                    let new = wide[*a as usize].resize(*w);
                    let i = *var as usize;
                    obs.on_assign(*var, &state.vars[i], &new);
                    state.vars[i] = new;
                }
                MOp::StArrS { arr, idx, a, w } => {
                    tick!();
                    let i = small[*idx as usize] as usize;
                    let ai = *arr as usize;
                    if i < state.arrays[ai].len() {
                        state.arrays[ai][i] = Bits::from_u64(small[*a as usize], *w);
                        state.note_arr_write(ai, i);
                    }
                }
                // Const-index stores are proven in bounds at compile
                // time, like the const-index loads above.
                MOp::StArrCS { arr, idx, a, w } => {
                    tick!();
                    let (ai, i) = (*arr as usize, *idx as usize);
                    state.arrays[ai][i] = Bits::from_u64(small[*a as usize], *w);
                    state.note_arr_write(ai, i);
                }
                MOp::StArrCW { arr, idx, a, w } => {
                    tick!();
                    let (ai, i) = (*arr as usize, *idx as usize);
                    state.arrays[ai][i] = wide[*a as usize].resize(*w);
                    state.note_arr_write(ai, i);
                }
                MOp::StArrW { arr, idx, a, w } => {
                    tick!();
                    let i = small[*idx as usize] as usize;
                    let ai = *arr as usize;
                    if i < state.arrays[ai].len() {
                        state.arrays[ai][i] = wide[*a as usize].resize(*w);
                        state.note_arr_write(ai, i);
                    }
                }
                MOp::StSigS { sig, a, w } => {
                    tick!();
                    state.sigs_out[*sig as usize] = Bits::from_u64(small[*a as usize], *w);
                }
                MOp::StSigW { sig, a, w } => {
                    tick!();
                    state.sigs_out[*sig as usize] = wide[*a as usize].resize(*w);
                }
                MOp::BranchZ { c, target } => {
                    tick!();
                    if small[*c as usize] == 0 {
                        pc = *target as usize;
                        continue;
                    }
                }
                MOp::Jmp { target } => {
                    tick!();
                    pc = *target as usize;
                    continue;
                }
                MOp::PauseOp => {
                    tick!();
                    ctx.pc = pc + 1;
                    return Ok(());
                }
                MOp::LabelOp { id } => {
                    tick!();
                    obs.on_label(&thread.labels[*id as usize]);
                }
                MOp::ExtOp { id } => {
                    tick!();
                    obs.on_ext_point(*id, state);
                }
                MOp::HaltOp => {
                    tick!();
                    ctx.pc = pc;
                    ctx.halted = true;
                    return Ok(());
                }
            }
            pc += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::flat::flatten;
    use crate::interp::{Machine, NullEnv, NullObserver};
    use crate::program::{ArrayBacking, ProgramBuilder};

    fn compiled(pb: &ProgramBuilder) -> CompiledMachine {
        CompiledMachine::from_program(&pb.clone().build().unwrap()).unwrap()
    }

    fn both(pb: &ProgramBuilder) -> (Machine, CompiledMachine) {
        let prog = pb.clone().build().unwrap();
        (
            Machine::new(flatten(&prog).unwrap()),
            CompiledMachine::from_program(&prog).unwrap(),
        )
    }

    /// Runs both machines to halt (or `cap` cycles) and asserts the full
    /// machine state — vars, arrays, output signals, high-water marks —
    /// plus cycle and op counts match.
    fn assert_lockstep(pb: &ProgramBuilder, cap: u64) {
        let (mut tw, mut cm) = both(pb);
        for _ in 0..cap {
            if tw.halted() {
                break;
            }
            tw.step_cycle(&mut NullEnv, &mut NullObserver).unwrap();
            cm.step_cycle(&mut NullEnv, &mut NullObserver).unwrap();
            assert_eq!(tw.state().vars, cm.state().vars, "vars diverged");
            assert_eq!(tw.state().arrays, cm.state().arrays, "arrays diverged");
            assert_eq!(tw.state().sigs_out, cm.state().sigs_out, "sigs diverged");
            assert_eq!(
                tw.state().arr_high,
                cm.state().arr_high,
                "arr_high diverged"
            );
        }
        assert_eq!(tw.halted(), cm.halted());
        assert_eq!(tw.cycle(), cm.cycle());
        assert_eq!(tw.ops_executed(), cm.ops_executed());
    }

    #[test]
    fn counter_counts() {
        let mut pb = ProgramBuilder::new("counter");
        let c = pb.reg("c", 32);
        pb.thread(
            "main",
            vec![forever(vec![assign(c, add(var(c), lit(1, 32))), pause()])],
        );
        let mut m = compiled(&pb);
        m.run_cycles(10, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(m.state().vars[0].to_u64(), 10);
        assert_eq!(m.cycle(), 10);
        assert_lockstep(&pb, 10);
    }

    #[test]
    fn arrays_oob_and_high_water() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 16);
        let t = pb.array("t", 16, 4, ArrayBacking::LutRam);
        pb.thread(
            "main",
            vec![
                arr_write(t, lit(2, 8), lit(0xbeef, 16)),
                arr_write(t, lit(200, 8), lit(0xdead, 16)), // dropped
                assign(a, arr_read(t, lit(2, 8))),
                assign(a, add(var(a), arr_read(t, lit(99, 8)))), // oob read = 0
                halt(),
            ],
        );
        let mut m = compiled(&pb);
        m.run_cycles(5, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(m.state().vars[0].to_u64(), 0xbeef);
        assert_eq!(m.state().arr_high[0], 3, "high-water lifted by slot 2");
        assert_lockstep(&pb, 5);
    }

    #[test]
    fn wide_values_round_trip() {
        // 128/512-bit registers exercise every wide micro-op class.
        let mut pb = ProgramBuilder::new("wide");
        let a = pb.reg("a", 128);
        let b = pb.reg("b", 512);
        let c = pb.reg("c", 16);
        pb.thread(
            "main",
            vec![
                assign(a, shl(lit(0xdead, 128), lit(100, 8))),
                assign(b, mul(resize(var(a), 512), lit(3, 8))),
                assign(b, bxor(var(b), not(resize(var(a), 512)))),
                assign(c, slice(var(b), 111, 96)),
                assign(
                    a,
                    mux(gt(var(b), lit(0, 8)), concat(var(c), lit(0, 112)), var(a)),
                ),
                halt(),
            ],
        );
        assert_lockstep(&pb, 5);
    }

    #[test]
    fn shift_rule_matches_treewalk() {
        // Directed pin of the shift width rule: results keep the left
        // operand's width; wider right operands do NOT widen the left.
        let mut pb = ProgramBuilder::new("shifts");
        let a = pb.reg("a", 8);
        let b = pb.reg("b", 16);
        let c = pb.reg("c", 64);
        pb.thread(
            "main",
            vec![
                assign(a, shl(lit(0x80, 8), lit(1, 16))), // falls off width 8
                assign(b, shl(lit(1, 16), lit(9, 8))),    // stays in width 16
                assign(c, shr(lit(0x300, 16), lit(4, 64))),
                assign(c, shl(var(c), lit(1 << 40, 64))), // huge amount -> 0
                halt(),
            ],
        );
        let (mut tw, mut cm) = both(&pb);
        tw.run_cycles(5, &mut NullEnv, &mut NullObserver).unwrap();
        cm.run_cycles(5, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(tw.state().vars, cm.state().vars);
        assert_eq!(cm.state().vars[0].to_u64(), 0);
        assert_eq!(cm.state().vars[1].to_u64(), 0x200);
        assert_eq!(cm.state().vars[2].to_u64(), 0);
    }

    #[test]
    fn signal_handshake_and_two_threads() {
        let mut pb = ProgramBuilder::new("p");
        let ready = pb.sig_in("ready", 1);
        let done = pb.sig_out("done", 8);
        let x = pb.reg("x", 32);
        pb.thread(
            "main",
            vec![wait_until(sig(ready)), sig_write(done, lit(7, 8)), halt()],
        );
        pb.thread(
            "side",
            vec![forever(vec![assign(x, add(var(x), lit(2, 32))), pause()])],
        );

        struct RaiseAt(u64);
        impl Env for RaiseAt {
            fn tick(&mut self, cycle: u64, prog: &Program, st: &mut MachineState) {
                if cycle >= self.0 {
                    st.drive(prog, "ready", Bits::from_u64(1, 1));
                }
            }
        }
        let mut m = compiled(&pb);
        m.run_cycles(10, &mut RaiseAt(3), &mut NullObserver)
            .unwrap();
        assert_eq!(m.state().sigs_out[1].to_u64(), 7);
        assert!(m.cycle() >= 3);
        assert!(m.state().vars[0].to_u64() >= 6);
    }

    #[test]
    fn observer_trace_matches_treewalk() {
        #[derive(Default, PartialEq, Debug)]
        struct Trace {
            assigns: Vec<(u32, u64)>,
            labels: Vec<String>,
            exts: Vec<u32>,
        }
        impl Observer for Trace {
            fn on_assign(&mut self, v: u32, _o: &Bits, n: &Bits) {
                self.assigns.push((v, n.to_u64()));
            }
            fn on_label(&mut self, n: &str) {
                self.labels.push(n.into());
            }
            fn on_ext_point(&mut self, id: u32, _s: &mut MachineState) {
                self.exts.push(id);
            }
        }
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        pb.thread(
            "main",
            vec![
                label("start"),
                assign(a, lit(1, 8)),
                ext_point(7),
                if_else(
                    eq(var(a), lit(1, 8)),
                    vec![assign(a, lit(2, 8))],
                    vec![assign(a, lit(3, 8))],
                ),
                halt(),
            ],
        );
        let (mut tw, mut cm) = both(&pb);
        let (mut ta, mut tb) = (Trace::default(), Trace::default());
        tw.run_cycles(5, &mut NullEnv, &mut ta).unwrap();
        cm.run_cycles(5, &mut NullEnv, &mut tb).unwrap();
        assert_eq!(ta, tb);
        assert_eq!(ta.labels, vec!["start".to_string()]);
        assert_eq!(ta.exts, vec![7]);
    }

    #[test]
    fn missing_pause_detected_with_same_message() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        pb.thread(
            "main",
            vec![forever(vec![assign(a, add(var(a), lit(1, 8)))])],
        );
        let (mut tw, mut cm) = both(&pb);
        tw.max_ops_per_cycle = 1000;
        cm.max_ops_per_cycle = 1000;
        let e1 = tw.step_cycle(&mut NullEnv, &mut NullObserver).unwrap_err();
        let e2 = cm.step_cycle(&mut NullEnv, &mut NullObserver).unwrap_err();
        assert_eq!(e1, e2, "trap messages must match");
    }

    #[test]
    fn loops_breaks_and_dynamic_indexing_lockstep() {
        let mut pb = ProgramBuilder::new("p");
        let i = pb.reg("i", 8);
        let acc = pb.reg("acc", 64);
        let t = pb.array("t", 32, 8, ArrayBacking::BlockRam);
        pb.thread(
            "main",
            vec![
                while_loop(
                    lt(var(i), lit(12, 8)),
                    vec![
                        if_then(eq(var(i), lit(9, 8)), vec![break_loop()]),
                        arr_write(t, band(var(i), lit(7, 8)), mul(var(i), var(i))),
                        assign(acc, add(var(acc), arr_read(t, band(var(i), lit(3, 8))))),
                        assign(i, add(var(i), lit(1, 8))),
                        pause(),
                    ],
                ),
                halt(),
            ],
        );
        assert_lockstep(&pb, 50);
    }

    #[test]
    fn pretty_printer_renders_mops() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        pb.thread("main", vec![assign(a, add(var(a), lit(1, 8))), halt()]);
        let cp = compile(&flatten(&pb.build().unwrap()).unwrap()).unwrap();
        let text = mops_to_string(&cp.threads[0], &cp.prog);
        assert!(text.contains("var a"), "{text}");
        assert!(text.contains("halt"), "{text}");
    }
}
