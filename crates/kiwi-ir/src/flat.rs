//! Lowering from structured statements to a linear op stream.
//!
//! Both back ends consume this form: the interpreter walks it with a
//! program counter, and the Kiwi compiler partitions it into clock-cycle
//! states at `Pause` boundaries. Sharing the lowering guarantees the two
//! targets execute the *same* operation sequence — the property behind the
//! paper's claim that one codebase runs on CPUs, in simulation, and on
//! FPGAs (§1, contribution 2).

use crate::ast::{Expr, IrError, IrResult, Stmt};
use crate::program::{ArrId, Program, SigId, VarId};

/// A linear operation. `usize` operands are op indices within the thread.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Register assignment.
    Assign(VarId, Expr),
    /// Array element write.
    ArrWrite(ArrId, Expr, Expr),
    /// Output-signal drive.
    SigWrite(SigId, Expr),
    /// Conditional branch: fall through when `cond` ≠ 0, jump to `if_false`
    /// otherwise.
    Branch(Expr, usize),
    /// Unconditional jump.
    Jump(usize),
    /// End of clock cycle.
    Pause,
    /// Named program point.
    Label(String),
    /// Debug extension point.
    ExtPoint(u32),
    /// Thread stops.
    Halt,
}

/// One flattened thread.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatThread {
    /// Thread name, copied from the source thread.
    pub name: String,
    /// Linear op stream.
    pub ops: Vec<Op>,
}

/// A flattened program: the original declarations plus linear threads.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatProgram {
    /// The source program (declarations are shared, bodies ignored).
    pub prog: Program,
    /// One entry per source thread.
    pub threads: Vec<FlatThread>,
}

/// Flattens every thread of `prog`.
///
/// Threads fall off the end into an implicit [`Op::Halt`]. `Break` and
/// `Continue` outside a loop are rejected.
pub fn flatten(prog: &Program) -> IrResult<FlatProgram> {
    prog.validate()?;
    let mut threads = Vec::new();
    for t in &prog.threads {
        let mut f = Flattener::default();
        f.stmts(&t.body)?;
        f.ops.push(Op::Halt);
        threads.push(FlatThread {
            name: t.name.clone(),
            ops: f.ops,
        });
    }
    Ok(FlatProgram {
        prog: prog.clone(),
        threads,
    })
}

#[derive(Default)]
struct Flattener {
    ops: Vec<Op>,
    /// Stack of (loop-header index, break-patch sites).
    loops: Vec<(usize, Vec<usize>)>,
}

impl Flattener {
    fn stmts(&mut self, body: &[Stmt]) -> IrResult<()> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> IrResult<()> {
        match s {
            Stmt::Assign(d, e) => self.ops.push(Op::Assign(*d, e.clone())),
            Stmt::ArrWrite(a, i, v) => self.ops.push(Op::ArrWrite(*a, i.clone(), v.clone())),
            Stmt::SigWrite(sg, v) => self.ops.push(Op::SigWrite(*sg, v.clone())),
            Stmt::Pause => self.ops.push(Op::Pause),
            Stmt::Label(l) => self.ops.push(Op::Label(l.clone())),
            Stmt::ExtPoint(id) => self.ops.push(Op::ExtPoint(*id)),
            Stmt::Halt => self.ops.push(Op::Halt),
            Stmt::If(c, t, e) => {
                let br = self.ops.len();
                self.ops.push(Op::Branch(c.clone(), usize::MAX));
                self.stmts(t)?;
                if e.is_empty() {
                    let end = self.ops.len();
                    self.patch_branch(br, end);
                } else {
                    let jmp = self.ops.len();
                    self.ops.push(Op::Jump(usize::MAX));
                    let else_start = self.ops.len();
                    self.patch_branch(br, else_start);
                    self.stmts(e)?;
                    let end = self.ops.len();
                    self.patch_jump(jmp, end);
                }
            }
            Stmt::While(c, b) => {
                let header = self.ops.len();
                self.ops.push(Op::Branch(c.clone(), usize::MAX));
                self.loops.push((header, Vec::new()));
                self.stmts(b)?;
                self.ops.push(Op::Jump(header));
                let end = self.ops.len();
                self.patch_branch(header, end);
                let (_, breaks) = self.loops.pop().expect("loop stack underflow");
                for site in breaks {
                    self.patch_jump(site, end);
                }
            }
            Stmt::Break => {
                if self.loops.is_empty() {
                    return Err(IrError("break outside loop".into()));
                }
                let site = self.ops.len();
                self.ops.push(Op::Jump(usize::MAX));
                self.loops.last_mut().expect("checked").1.push(site);
            }
            Stmt::Continue => {
                let header = self
                    .loops
                    .last()
                    .ok_or_else(|| IrError("continue outside loop".into()))?
                    .0;
                self.ops.push(Op::Jump(header));
            }
        }
        Ok(())
    }

    fn patch_branch(&mut self, at: usize, target: usize) {
        if let Op::Branch(_, t) = &mut self.ops[at] {
            *t = target;
        } else {
            unreachable!("patch_branch on non-branch");
        }
    }

    fn patch_jump(&mut self, at: usize, target: usize) {
        if let Op::Jump(t) = &mut self.ops[at] {
            *t = target;
        } else {
            unreachable!("patch_jump on non-jump");
        }
    }
}

impl FlatThread {
    /// All jump/branch targets are in-range; every thread ends with an op
    /// that cannot fall through. Used by tests and by the compiler.
    pub fn check_targets(&self) -> IrResult<()> {
        let n = self.ops.len();
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                Op::Branch(_, t) | Op::Jump(t) if *t > n => {
                    return Err(IrError(format!("op {i} target {t} out of range {n}")));
                }
                _ => {}
            }
        }
        match self.ops.last() {
            Some(Op::Halt) | Some(Op::Jump(_)) => Ok(()),
            other => Err(IrError(format!("thread {} ends with {other:?}", self.name))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::program::ProgramBuilder;

    fn prog_of(body: Vec<Stmt>) -> FlatProgram {
        let mut pb = ProgramBuilder::new("t");
        let _a = pb.reg("a", 8);
        pb.thread("main", body);
        flatten(&pb.build().unwrap()).unwrap()
    }

    #[test]
    fn straight_line_flattens_in_order() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.reg("a", 8);
        pb.thread(
            "main",
            vec![assign(a, lit(1, 8)), pause(), assign(a, lit(2, 8))],
        );
        let f = flatten(&pb.build().unwrap()).unwrap();
        let ops = &f.threads[0].ops;
        assert_eq!(ops.len(), 4); // 3 stmts + implicit halt
        assert!(matches!(ops[1], Op::Pause));
        assert!(matches!(ops[3], Op::Halt));
        f.threads[0].check_targets().unwrap();
    }

    #[test]
    fn if_else_branch_targets() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.reg("a", 8);
        pb.thread(
            "main",
            vec![if_else(
                eq(var(a), lit(0, 8)),
                vec![assign(a, lit(1, 8))],
                vec![assign(a, lit(2, 8))],
            )],
        );
        let f = flatten(&pb.build().unwrap()).unwrap();
        let ops = &f.threads[0].ops;
        // branch, then-assign, jump, else-assign, halt
        assert_eq!(ops.len(), 5);
        match &ops[0] {
            Op::Branch(_, t) => assert_eq!(*t, 3),
            o => panic!("expected branch, got {o:?}"),
        }
        match &ops[2] {
            Op::Jump(t) => assert_eq!(*t, 4),
            o => panic!("expected jump, got {o:?}"),
        }
        f.threads[0].check_targets().unwrap();
    }

    #[test]
    fn while_with_break_and_continue() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.reg("a", 8);
        pb.thread(
            "main",
            vec![while_loop(
                tru(),
                vec![
                    if_then(eq(var(a), lit(5, 8)), vec![break_loop()]),
                    if_then(eq(var(a), lit(3, 8)), vec![continue_loop()]),
                    assign(a, add(var(a), lit(1, 8))),
                    pause(),
                ],
            )],
        );
        let f = flatten(&pb.build().unwrap()).unwrap();
        f.threads[0].check_targets().unwrap();
        // The break jump must target the op *after* the loop's back-jump.
        let ops = &f.threads[0].ops;
        let back_jump = ops
            .iter()
            .rposition(|o| matches!(o, Op::Jump(0)))
            .expect("back jump to header");
        let break_target = ops
            .iter()
            .filter_map(|o| match o {
                Op::Jump(t) if *t != 0 => Some(*t),
                _ => None,
            })
            .next()
            .expect("break jump");
        assert_eq!(break_target, back_jump + 1);
    }

    #[test]
    fn break_outside_loop_rejected() {
        let mut pb = ProgramBuilder::new("t");
        pb.thread("main", vec![break_loop()]);
        assert!(flatten(&pb.build().unwrap()).is_err());
    }

    #[test]
    fn continue_outside_loop_rejected() {
        let mut pb = ProgramBuilder::new("t");
        pb.thread("main", vec![continue_loop()]);
        assert!(flatten(&pb.build().unwrap()).is_err());
    }

    #[test]
    fn nested_loops_patch_correct_levels() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.reg("a", 8);
        pb.thread(
            "main",
            vec![while_loop(
                lt(var(a), lit(3, 8)),
                vec![
                    while_loop(tru(), vec![break_loop(), pause()]),
                    assign(a, add(var(a), lit(1, 8))),
                    pause(),
                ],
            )],
        );
        let f = flatten(&pb.build().unwrap()).unwrap();
        f.threads[0].check_targets().unwrap();
    }

    #[test]
    fn empty_body_yields_halt_only() {
        let f = prog_of(vec![]);
        assert_eq!(f.threads[0].ops, vec![Op::Halt]);
    }
}
