//! Expression and statement forms of the IR.
//!
//! The IR plays the role that .NET CIL plays in the Emu toolchain (§3.1):
//! it is the single program representation produced from the high-level
//! source (here, the builder DSL in [`crate::dsl`]) and consumed by every
//! back end — the sequential interpreter (the paper's x86 target), the
//! Kiwi-style FSM compiler (the FPGA target), and the Mininet-analogue
//! network simulator.
//!
//! Semantics are deliberately hardware-shaped: all values are unsigned
//! fixed-width words (see [`emu_types::Bits`]), arithmetic is modular in
//! the result width, and `Pause` marks a clock-cycle boundary exactly like
//! `Kiwi.Pause()` in the paper (§3.2(ii), Figure 2 line 11).

use crate::program::{ArrId, Program, SigId, VarId};
use emu_types::Bits;
use std::fmt;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise complement in the operand's width.
    Not,
    /// Two's-complement negation in the operand's width.
    Neg,
    /// OR-reduction to a single bit (`|x` in Verilog).
    RedOr,
}

/// Binary operators.
///
/// Arithmetic/logic operators produce `max(lhs, rhs)` bits (operands are
/// zero-extended); shifts keep the left operand's width; comparisons are
/// unsigned and produce a single bit.
///
/// # The shift width rule
///
/// `Shl`/`Shr` are deliberately **asymmetric**: where every other binary
/// op widens both operands to the result width, a shift uses the
/// *unresized* left operand and its result keeps `width(lhs)` —
/// whatever the width or value of the right operand. Consequences every
/// backend must honour identically:
///
/// * `Shl` bits shifted at or past `width(lhs)` are lost — a wider
///   right operand does **not** widen the left before shifting
///   (`shl(8'h80, 16'h1) == 8'h0`, not `16'h100`);
/// * a shift amount ≥ `width(lhs)` yields zero;
/// * the shift amount is the right operand's low 64 bits, saturating at
///   `u32::MAX` (which always exceeds any legal width).
///
/// This mirrors Verilog's self-determined shift semantics when the
/// expression is truncated to the left operand's width, which is why
/// the Verilog emitter masks `<<` results to `width(lhs)` — see
/// `kiwi::verilog`. The rule is pinned across the tree-walking
/// interpreter, the compiled micro-op backend, and the RTL executor by
/// directed tests (`shift_rule_*` in this crate and
/// `tests/backend_equiv.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Modular addition.
    Add,
    /// Modular subtraction.
    Sub,
    /// Modular multiplication (low bits).
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left; shift amount taken modulo nothing (≥ width ⇒ 0).
    Shl,
    /// Logical shift right.
    Shr,
    /// Equality (1 bit).
    Eq,
    /// Inequality (1 bit).
    Ne,
    /// Unsigned less-than (1 bit).
    Lt,
    /// Unsigned less-or-equal (1 bit).
    Le,
    /// Unsigned greater-than (1 bit).
    Gt,
    /// Unsigned greater-or-equal (1 bit).
    Ge,
}

impl BinOp {
    /// True for the comparison operators (1-bit results).
    pub fn is_compare(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal.
    Const(Bits),
    /// A register read.
    Var(VarId),
    /// An array element read (`arr[idx]`); out-of-range reads yield zero,
    /// matching hardware address decoding with undriven outputs tied low.
    ArrRead(ArrId, Box<Expr>),
    /// An input-signal sample (IP block output or platform input).
    SigRead(SigId),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Two-way multiplexer: `cond ? then : else` (cond ≠ 0 selects `then`).
    Mux(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Bit slice `[hi:lo]`, inclusive, Verilog order.
    Slice(Box<Expr>, u16, u16),
    /// Concatenation `{hi, lo}`.
    Concat(Box<Expr>, Box<Expr>),
    /// Zero-extension or truncation to an explicit width.
    Resize(Box<Expr>, u16),
}

/// Errors from IR validation or lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrError(pub String);

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR error: {}", self.0)
    }
}

impl std::error::Error for IrError {}

/// Convenience alias.
pub type IrResult<T> = Result<T, IrError>;

impl Expr {
    /// Computes the width of this expression in `prog`'s declaration
    /// context, validating sub-expressions along the way.
    pub fn width(&self, prog: &Program) -> IrResult<u16> {
        match self {
            Expr::Const(b) => Ok(b.width()),
            Expr::Var(v) => prog
                .var(*v)
                .map(|d| d.width)
                .ok_or_else(|| IrError(format!("unknown var {v:?}"))),
            Expr::ArrRead(a, idx) => {
                idx.width(prog)?;
                prog.array(*a)
                    .map(|d| d.elem_width)
                    .ok_or_else(|| IrError(format!("unknown array {a:?}")))
            }
            Expr::SigRead(s) => {
                let d = prog
                    .signal(*s)
                    .ok_or_else(|| IrError(format!("unknown signal {s:?}")))?;
                Ok(d.width)
            }
            Expr::Un(op, e) => {
                let w = e.width(prog)?;
                Ok(match op {
                    UnOp::Not | UnOp::Neg => w,
                    UnOp::RedOr => 1,
                })
            }
            Expr::Bin(op, l, r) => {
                let wl = l.width(prog)?;
                let wr = r.width(prog)?;
                Ok(match op {
                    _ if op.is_compare() => 1,
                    BinOp::Shl | BinOp::Shr => wl,
                    _ => wl.max(wr),
                })
            }
            Expr::Mux(c, t, e) => {
                c.width(prog)?;
                let wt = t.width(prog)?;
                let we = e.width(prog)?;
                Ok(wt.max(we))
            }
            Expr::Slice(e, hi, lo) => {
                let w = e.width(prog)?;
                if hi < lo || *hi >= w {
                    return Err(IrError(format!(
                        "slice [{hi}:{lo}] out of range for width {w}"
                    )));
                }
                Ok(hi - lo + 1)
            }
            Expr::Concat(h, l) => {
                let w = h.width(prog)? + l.width(prog)?;
                if w > emu_types::bits::MAX_WIDTH {
                    return Err(IrError(format!("concat width {w} exceeds maximum")));
                }
                Ok(w)
            }
            Expr::Resize(e, w) => {
                e.width(prog)?;
                if *w == 0 || *w > emu_types::bits::MAX_WIDTH {
                    return Err(IrError(format!("resize to invalid width {w}")));
                }
                Ok(*w)
            }
        }
    }

    /// Estimated combinational delay of this expression in "gate units",
    /// used by the Kiwi scheduler's clock-period budget (§3.4: "If Kiwi
    /// schedules too little computation, it is inefficient; if it schedules
    /// too much, the implementation on the target FPGA device fails").
    ///
    /// The model is a crude depth estimate: carry chains cost proportional
    /// to `log2(width)`, logic costs 1, muxes/array reads cost address-decode
    /// depth. Absolute values are calibrated in `kiwi::resources`.
    pub fn delay(&self, prog: &Program) -> u32 {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::SigRead(_) => 0,
            Expr::ArrRead(a, idx) => {
                let decode = prog
                    .array(*a)
                    .map(|d| (usize::BITS - d.len.leading_zeros()).max(1))
                    .unwrap_or(1);
                idx.delay(prog) + decode
            }
            Expr::Un(op, e) => {
                e.delay(prog)
                    + match op {
                        UnOp::Not => 1,
                        UnOp::Neg => 4,
                        UnOp::RedOr => 3,
                    }
            }
            Expr::Bin(op, l, r) => {
                let base = l.delay(prog).max(r.delay(prog));
                let w = u32::from(self.width(prog).unwrap_or(64));
                let logw = (32 - w.leading_zeros()).max(1);
                base + match op {
                    BinOp::And | BinOp::Or | BinOp::Xor => 1,
                    BinOp::Add | BinOp::Sub => logw,
                    BinOp::Mul => 2 * logw,
                    BinOp::Shl | BinOp::Shr => logw,
                    BinOp::Eq | BinOp::Ne => logw,
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => logw + 1,
                }
            }
            Expr::Mux(c, t, e) => c.delay(prog).max(t.delay(prog)).max(e.delay(prog)) + 1,
            Expr::Slice(e, _, _) => e.delay(prog),
            Expr::Concat(h, l) => h.delay(prog).max(l.delay(prog)),
            Expr::Resize(e, _) => e.delay(prog),
        }
    }

    /// Visits every sub-expression (including `self`), pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::SigRead(_) => {}
            Expr::ArrRead(_, e) | Expr::Un(_, e) | Expr::Slice(e, _, _) | Expr::Resize(e, _) => {
                e.visit(f)
            }
            Expr::Bin(_, l, r) | Expr::Concat(l, r) => {
                l.visit(f);
                r.visit(f);
            }
            Expr::Mux(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Register assignment; the value is resized to the register's width.
    Assign(VarId, Expr),
    /// Array element write; out-of-range writes are dropped (hardware:
    /// write-enable decoded to no row).
    ArrWrite(ArrId, Expr, Expr),
    /// Drive an output signal for the current cycle onward.
    SigWrite(SigId, Expr),
    /// Conditional.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// Pre-tested loop.
    While(Expr, Vec<Stmt>),
    /// End the current clock cycle (`Kiwi.Pause()`).
    Pause,
    /// Named program point (breakpoint anchor, FSM state naming, and the
    /// paper's `break L` direction command target).
    Label(String),
    /// Debug extension point (§3.5): a hole where the direction controller
    /// can be attached. `ExtPoint(id)` is a no-op until the transformation
    /// pass in the `direction` crate fills it.
    ExtPoint(u32),
    /// Exit the innermost loop.
    Break,
    /// Re-test the innermost loop.
    Continue,
    /// Stop this thread permanently.
    Halt,
}

impl Stmt {
    /// Visits every statement in the tree (including `self`), pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::If(_, t, e) => {
                for s in t {
                    s.visit(f);
                }
                for s in e {
                    s.visit(f);
                }
            }
            Stmt::While(_, b) => {
                for s in b {
                    s.visit(f);
                }
            }
            _ => {}
        }
    }

    /// True if any statement in the subtree is a `Pause`.
    pub fn contains_pause(&self) -> bool {
        let mut found = false;
        self.visit(&mut |s| {
            if matches!(s, Stmt::Pause) {
                found = true;
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn widths_follow_rules() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.reg("a", 8);
        let b = pb.reg("b", 16);
        let p = pb.build_for_test();

        assert_eq!(add(var(a), var(b)).width(&p).unwrap(), 16);
        assert_eq!(eq(var(a), var(b)).width(&p).unwrap(), 1);
        assert_eq!(shl(var(b), lit(3, 8)).width(&p).unwrap(), 16);
        assert_eq!(concat(var(a), var(b)).width(&p).unwrap(), 24);
        assert_eq!(slice(var(b), 11, 4).width(&p).unwrap(), 8);
        assert_eq!(resize(var(a), 64).width(&p).unwrap(), 64);
        assert_eq!(
            mux(eq(var(a), lit(0, 8)), var(a), var(b))
                .width(&p)
                .unwrap(),
            16
        );
    }

    #[test]
    fn shift_rule_width_is_left_operand() {
        // The documented asymmetry: shifts keep width(lhs) whatever the
        // right operand's width, while other ops take the max.
        let mut pb = ProgramBuilder::new("t");
        let a = pb.reg("a", 8);
        let b = pb.reg("b", 16);
        let p = pb.build_for_test();
        assert_eq!(shl(var(a), var(b)).width(&p).unwrap(), 8);
        assert_eq!(shr(var(a), var(b)).width(&p).unwrap(), 8);
        assert_eq!(shl(var(b), var(a)).width(&p).unwrap(), 16);
        assert_eq!(add(var(a), var(b)).width(&p).unwrap(), 16);
    }

    #[test]
    fn bad_slice_rejected() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.reg("a", 8);
        let p = pb.build_for_test();
        assert!(slice(var(a), 8, 0).width(&p).is_err());
        assert!(slice(var(a), 2, 5).width(&p).is_err());
    }

    #[test]
    fn delay_grows_with_depth() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.reg("a", 32);
        let p = pb.build_for_test();
        let shallow = add(var(a), lit(1, 32));
        let deep = add(
            add(add(var(a), var(a)), add(var(a), var(a))),
            shallow.clone(),
        );
        assert!(deep.delay(&p) > shallow.delay(&p));
    }

    #[test]
    fn contains_pause_scans_subtrees() {
        let s = Stmt::If(
            lit(1, 1),
            vec![Stmt::While(lit(1, 1), vec![Stmt::Pause])],
            vec![],
        );
        assert!(s.contains_pause());
        let t = Stmt::If(lit(1, 1), vec![], vec![]);
        assert!(!t.contains_pause());
    }
}
