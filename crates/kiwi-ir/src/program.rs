//! Program containers: registers, arrays, signals, threads.
//!
//! A [`Program`] corresponds to one Emu service — the unit the paper
//! compiles to a NetFPGA "main logical core" (§5.1, Figure 10). State is
//! split the way Kiwi splits it:
//!
//! * **registers** (C# static fields) — [`VarDecl`],
//! * **arrays** (C# arrays; BRAM or LUTRAM on the FPGA) — [`ArrayDecl`],
//! * **signals** — the wires crossing the program boundary, used both for
//!   the platform substrate (frame ready/send handshake) and for IP block
//!   protocols like the hash-seed handshake of Figure 5 — [`SigDecl`],
//! * **threads** — Kiwi's hardware-semantics threads, which become
//!   parallel logical sub-circuits (§3.4) — [`Thread`].

use crate::ast::{IrError, IrResult, Stmt};
use emu_types::Bits;

/// Handle to a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Handle to an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrId(pub u32);

/// Handle to a boundary signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SigId(pub u32);

/// Signal direction, from the program's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SigDir {
    /// Driven by the environment, sampled by the program.
    In,
    /// Driven by the program, sampled by the environment.
    Out,
}

/// A register declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Source-level name (unique within the program).
    pub name: String,
    /// Width in bits.
    pub width: u16,
    /// Reset value.
    pub init: Bits,
}

/// Hint for how an array should be realized on the FPGA; affects resource
/// accounting (`kiwi::resources`), not simulation semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayBacking {
    /// Distributed LUT RAM: cheap for small arrays, combinational read.
    LutRam,
    /// Block RAM: the default for anything sizeable.
    BlockRam,
    /// Content-addressable memory IP block (the paper's CAM, §4.1).
    Cam,
}

/// An array declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Source-level name (unique within the program).
    pub name: String,
    /// Element width in bits.
    pub elem_width: u16,
    /// Number of elements.
    pub len: usize,
    /// Backing hint for resource estimation.
    pub backing: ArrayBacking,
    /// Optional non-zero initial contents (e.g. a DNS resolution table).
    pub init: Vec<(usize, Bits)>,
}

/// A boundary signal declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigDecl {
    /// Name (unique within the program); the platform and IP block models
    /// bind to signals by name.
    pub name: String,
    /// Width in bits.
    pub width: u16,
    /// Direction.
    pub dir: SigDir,
    /// Reset value for `Out` signals.
    pub init: Bits,
}

/// One hardware thread: a statement list executed as an implicit
/// `while (true)` if `looping` is set, else run once to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct Thread {
    /// Thread name (unique within the program).
    pub name: String,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A complete IR program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (becomes the Verilog module name).
    pub name: String,
    vars: Vec<VarDecl>,
    arrays: Vec<ArrayDecl>,
    signals: Vec<SigDecl>,
    /// Threads, executed in lockstep (one cycle each per clock).
    pub threads: Vec<Thread>,
}

impl Program {
    /// Looks up a register declaration.
    pub fn var(&self, id: VarId) -> Option<&VarDecl> {
        self.vars.get(id.0 as usize)
    }

    /// Looks up an array declaration.
    pub fn array(&self, id: ArrId) -> Option<&ArrayDecl> {
        self.arrays.get(id.0 as usize)
    }

    /// Looks up a signal declaration.
    pub fn signal(&self, id: SigId) -> Option<&SigDecl> {
        self.signals.get(id.0 as usize)
    }

    /// All register declarations, indexed by [`VarId`].
    pub fn vars(&self) -> &[VarDecl] {
        &self.vars
    }

    /// All array declarations, indexed by [`ArrId`].
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// All signal declarations, indexed by [`SigId`].
    pub fn signals(&self) -> &[SigDecl] {
        &self.signals
    }

    /// Finds a register by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Finds an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrId> {
        self.arrays
            .iter()
            .position(|v| v.name == name)
            .map(|i| ArrId(i as u32))
    }

    /// Finds a signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SigId> {
        self.signals
            .iter()
            .position(|v| v.name == name)
            .map(|i| SigId(i as u32))
    }

    /// Validates the whole program: declaration uniqueness, width legality,
    /// and expression well-formedness in every thread.
    pub fn validate(&self) -> IrResult<()> {
        let mut names = std::collections::HashSet::new();
        for v in &self.vars {
            if v.width == 0 || v.width > emu_types::bits::MAX_WIDTH {
                return Err(IrError(format!(
                    "register {} has invalid width {}",
                    v.name, v.width
                )));
            }
            if !names.insert(format!("v:{}", v.name)) {
                return Err(IrError(format!("duplicate register name {}", v.name)));
            }
        }
        for a in &self.arrays {
            if a.elem_width == 0 || a.elem_width > emu_types::bits::MAX_WIDTH {
                return Err(IrError(format!(
                    "array {} has invalid width {}",
                    a.name, a.elem_width
                )));
            }
            if a.len == 0 {
                return Err(IrError(format!("array {} has zero length", a.name)));
            }
            if !names.insert(format!("a:{}", a.name)) {
                return Err(IrError(format!("duplicate array name {}", a.name)));
            }
            for (i, _) in &a.init {
                if *i >= a.len {
                    return Err(IrError(format!(
                        "array {} init index {} out of range",
                        a.name, i
                    )));
                }
            }
        }
        for s in &self.signals {
            if s.width == 0 || s.width > emu_types::bits::MAX_WIDTH {
                return Err(IrError(format!(
                    "signal {} has invalid width {}",
                    s.name, s.width
                )));
            }
            if !names.insert(format!("s:{}", s.name)) {
                return Err(IrError(format!("duplicate signal name {}", s.name)));
            }
        }
        let mut tnames = std::collections::HashSet::new();
        for t in &self.threads {
            if !tnames.insert(t.name.clone()) {
                return Err(IrError(format!("duplicate thread name {}", t.name)));
            }
            for s in &t.body {
                self.validate_stmt(s)?;
            }
        }
        Ok(())
    }

    fn validate_stmt(&self, s: &Stmt) -> IrResult<()> {
        match s {
            Stmt::Assign(dst, e) => {
                self.var(*dst)
                    .ok_or_else(|| IrError(format!("assign to unknown var {dst:?}")))?;
                e.width(self)?;
            }
            Stmt::ArrWrite(arr, idx, val) => {
                self.array(*arr)
                    .ok_or_else(|| IrError(format!("write to unknown array {arr:?}")))?;
                idx.width(self)?;
                val.width(self)?;
            }
            Stmt::SigWrite(sig, val) => {
                let d = self
                    .signal(*sig)
                    .ok_or_else(|| IrError(format!("write to unknown signal {sig:?}")))?;
                if d.dir != SigDir::Out {
                    return Err(IrError(format!("write to input signal {}", d.name)));
                }
                val.width(self)?;
            }
            Stmt::If(c, t, e) => {
                c.width(self)?;
                for s in t {
                    self.validate_stmt(s)?;
                }
                for s in e {
                    self.validate_stmt(s)?;
                }
            }
            Stmt::While(c, b) => {
                c.width(self)?;
                for s in b {
                    self.validate_stmt(s)?;
                }
            }
            Stmt::Pause
            | Stmt::Label(_)
            | Stmt::ExtPoint(_)
            | Stmt::Break
            | Stmt::Continue
            | Stmt::Halt => {}
        }
        Ok(())
    }

    /// Rough static size of the program, used in reports: statement count
    /// across all threads.
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        for t in &self.threads {
            for s in &t.body {
                s.visit(&mut |_| n += 1);
            }
        }
        n
    }
}

/// Incremental builder for [`Program`].
///
/// # Examples
///
/// ```
/// use kiwi_ir::{ProgramBuilder, dsl::*};
///
/// let mut pb = ProgramBuilder::new("counter");
/// let count = pb.reg("count", 32);
/// pb.thread("main", vec![
///     forever(vec![
///         assign(count, add(var(count), lit(1, 32))),
///         pause(),
///     ]),
/// ]);
/// let prog = pb.build().unwrap();
/// assert_eq!(prog.vars().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    prog: Program,
}

impl ProgramBuilder {
    /// Starts a new program.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            prog: Program {
                name: name.to_string(),
                vars: Vec::new(),
                arrays: Vec::new(),
                signals: Vec::new(),
                threads: Vec::new(),
            },
        }
    }

    /// Declares a zero-initialized register.
    pub fn reg(&mut self, name: &str, width: u16) -> VarId {
        self.reg_init(name, width, Bits::zero(width.max(1)))
    }

    /// Declares a register with an explicit reset value.
    pub fn reg_init(&mut self, name: &str, width: u16, init: Bits) -> VarId {
        let id = VarId(self.prog.vars.len() as u32);
        self.prog.vars.push(VarDecl {
            name: name.to_string(),
            width,
            init: init.resize(width.max(1)),
        });
        id
    }

    /// Declares an array with a backing hint.
    pub fn array(
        &mut self,
        name: &str,
        elem_width: u16,
        len: usize,
        backing: ArrayBacking,
    ) -> ArrId {
        let id = ArrId(self.prog.arrays.len() as u32);
        self.prog.arrays.push(ArrayDecl {
            name: name.to_string(),
            elem_width,
            len,
            backing,
            init: Vec::new(),
        });
        id
    }

    /// Declares an array with initial contents.
    pub fn array_init(
        &mut self,
        name: &str,
        elem_width: u16,
        len: usize,
        backing: ArrayBacking,
        init: Vec<(usize, Bits)>,
    ) -> ArrId {
        let id = self.array(name, elem_width, len, backing);
        self.prog.arrays[id.0 as usize].init = init;
        id
    }

    /// Declares an input signal.
    pub fn sig_in(&mut self, name: &str, width: u16) -> SigId {
        let id = SigId(self.prog.signals.len() as u32);
        self.prog.signals.push(SigDecl {
            name: name.to_string(),
            width,
            dir: SigDir::In,
            init: Bits::zero(width.max(1)),
        });
        id
    }

    /// Declares an output signal (reset to zero).
    pub fn sig_out(&mut self, name: &str, width: u16) -> SigId {
        let id = SigId(self.prog.signals.len() as u32);
        self.prog.signals.push(SigDecl {
            name: name.to_string(),
            width,
            dir: SigDir::Out,
            init: Bits::zero(width.max(1)),
        });
        id
    }

    /// Adds a thread with the given body.
    pub fn thread(&mut self, name: &str, body: Vec<Stmt>) {
        self.prog.threads.push(Thread {
            name: name.to_string(),
            body,
        });
    }

    /// Finishes and validates the program.
    pub fn build(self) -> IrResult<Program> {
        self.prog.validate()?;
        Ok(self.prog)
    }

    /// Finishes without validation; for width-rule unit tests only.
    #[doc(hidden)]
    pub fn build_for_test(self) -> Program {
        self.prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    #[test]
    fn builder_round_trip() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        let arr = pb.array("t", 16, 4, ArrayBacking::LutRam);
        let s = pb.sig_out("led", 1);
        pb.thread(
            "main",
            vec![
                assign(a, lit(1, 8)),
                arr_write(arr, lit(0, 2), lit(0xbeef, 16)),
                sig_write(s, lit(1, 1)),
                halt(),
            ],
        );
        let p = pb.build().unwrap();
        assert_eq!(p.var_by_name("a"), Some(a));
        assert_eq!(p.array_by_name("t"), Some(arr));
        assert_eq!(p.signal_by_name("led"), Some(s));
        assert_eq!(p.stmt_count(), 4);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut pb = ProgramBuilder::new("p");
        pb.reg("x", 8);
        pb.reg("x", 8);
        assert!(pb.build().is_err());
    }

    #[test]
    fn write_to_input_signal_rejected() {
        let mut pb = ProgramBuilder::new("p");
        let s = pb.sig_in("ready", 1);
        pb.thread("main", vec![sig_write(s, lit(1, 1))]);
        assert!(pb.build().is_err());
    }

    #[test]
    fn bad_array_init_rejected() {
        let mut pb = ProgramBuilder::new("p");
        pb.array_init(
            "t",
            8,
            4,
            ArrayBacking::BlockRam,
            vec![(9, Bits::from_u64(1, 8))],
        );
        assert!(pb.build().is_err());
    }

    #[test]
    fn zero_len_array_rejected() {
        let mut pb = ProgramBuilder::new("p");
        pb.array("t", 8, 0, ArrayBacking::BlockRam);
        assert!(pb.build().is_err());
    }
}
