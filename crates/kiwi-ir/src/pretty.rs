//! Pretty-printers for programs, statements and flattened op streams.
//!
//! These renderings are used in compiler diagnostics, in the examples, and
//! in tests that assert on program shape without pattern-matching ASTs.

use crate::ast::{BinOp, Expr, Stmt, UnOp};
use crate::flat::{FlatThread, Op};
use crate::program::Program;
use std::fmt::Write as _;

/// Renders an expression as a compact infix string.
pub fn expr_to_string(e: &Expr, prog: &Program) -> String {
    match e {
        Expr::Const(b) => b.to_string(),
        Expr::Var(v) => prog
            .var(*v)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("?v{}", v.0)),
        Expr::ArrRead(a, i) => format!(
            "{}[{}]",
            prog.array(*a)
                .map(|d| d.name.clone())
                .unwrap_or_else(|| format!("?a{}", a.0)),
            expr_to_string(i, prog)
        ),
        Expr::SigRead(s) => format!(
            "${}",
            prog.signal(*s)
                .map(|d| d.name.clone())
                .unwrap_or_else(|| format!("?s{}", s.0))
        ),
        Expr::Un(op, e) => {
            let sym = match op {
                UnOp::Not => "~",
                UnOp::Neg => "-",
                UnOp::RedOr => "|",
            };
            format!("{sym}({})", expr_to_string(e, prog))
        }
        Expr::Bin(op, l, r) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::And => "&",
                BinOp::Or => "|",
                BinOp::Xor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
            };
            format!(
                "({} {sym} {})",
                expr_to_string(l, prog),
                expr_to_string(r, prog)
            )
        }
        Expr::Mux(c, t, e2) => format!(
            "({} ? {} : {})",
            expr_to_string(c, prog),
            expr_to_string(t, prog),
            expr_to_string(e2, prog)
        ),
        Expr::Slice(e, hi, lo) => format!("{}[{hi}:{lo}]", expr_to_string(e, prog)),
        Expr::Concat(h, l) => format!(
            "{{{}, {}}}",
            expr_to_string(h, prog),
            expr_to_string(l, prog)
        ),
        Expr::Resize(e, w) => format!("{}'({})", w, expr_to_string(e, prog)),
    }
}

/// Renders a statement tree with indentation.
pub fn stmt_to_string(s: &Stmt, prog: &Program, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::Assign(d, e) => format!(
            "{pad}{} := {};\n",
            prog.var(*d).map(|v| v.name.clone()).unwrap_or_default(),
            expr_to_string(e, prog)
        ),
        Stmt::ArrWrite(a, i, v) => format!(
            "{pad}{}[{}] := {};\n",
            prog.array(*a).map(|d| d.name.clone()).unwrap_or_default(),
            expr_to_string(i, prog),
            expr_to_string(v, prog)
        ),
        Stmt::SigWrite(sg, v) => format!(
            "{pad}${} := {};\n",
            prog.signal(*sg).map(|d| d.name.clone()).unwrap_or_default(),
            expr_to_string(v, prog)
        ),
        Stmt::If(c, t, e) => {
            let mut out = format!("{pad}if {} {{\n", expr_to_string(c, prog));
            for s in t {
                out.push_str(&stmt_to_string(s, prog, indent + 1));
            }
            if !e.is_empty() {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in e {
                    out.push_str(&stmt_to_string(s, prog, indent + 1));
                }
            }
            let _ = writeln!(out, "{pad}}}");
            out
        }
        Stmt::While(c, b) => {
            let mut out = format!("{pad}while {} {{\n", expr_to_string(c, prog));
            for s in b {
                out.push_str(&stmt_to_string(s, prog, indent + 1));
            }
            let _ = writeln!(out, "{pad}}}");
            out
        }
        Stmt::Pause => format!("{pad}pause;\n"),
        Stmt::Label(l) => format!("{pad}label {l}:\n"),
        Stmt::ExtPoint(id) => format!("{pad}ext_point #{id};\n"),
        Stmt::Break => format!("{pad}break;\n"),
        Stmt::Continue => format!("{pad}continue;\n"),
        Stmt::Halt => format!("{pad}halt;\n"),
    }
}

/// Renders a whole program: declarations then thread bodies.
pub fn program_to_string(prog: &Program) -> String {
    let mut out = format!("program {} {{\n", prog.name);
    for v in prog.vars() {
        let _ = writeln!(out, "  reg {}: u{} = {};", v.name, v.width, v.init);
    }
    for a in prog.arrays() {
        let _ = writeln!(
            out,
            "  array {}: u{}[{}] ({:?});",
            a.name, a.elem_width, a.len, a.backing
        );
    }
    for s in prog.signals() {
        let _ = writeln!(out, "  sig {:?} {}: u{};", s.dir, s.name, s.width);
    }
    for t in &prog.threads {
        let _ = writeln!(out, "  thread {} {{", t.name);
        for s in &t.body {
            out.push_str(&stmt_to_string(s, prog, 2));
        }
        let _ = writeln!(out, "  }}");
    }
    out.push_str("}\n");
    out
}

/// Renders a flattened thread as a numbered op listing ("disassembly").
pub fn flat_to_string(t: &FlatThread, prog: &Program) -> String {
    let mut out = format!("thread {}:\n", t.name);
    for (i, op) in t.ops.iter().enumerate() {
        let body = match op {
            Op::Assign(d, e) => format!(
                "{} := {}",
                prog.var(*d).map(|v| v.name.clone()).unwrap_or_default(),
                expr_to_string(e, prog)
            ),
            Op::ArrWrite(a, ix, v) => format!(
                "{}[{}] := {}",
                prog.array(*a).map(|d| d.name.clone()).unwrap_or_default(),
                expr_to_string(ix, prog),
                expr_to_string(v, prog)
            ),
            Op::SigWrite(sg, v) => format!(
                "${} := {}",
                prog.signal(*sg).map(|d| d.name.clone()).unwrap_or_default(),
                expr_to_string(v, prog)
            ),
            Op::Branch(c, t) => format!("br {} else -> {t}", expr_to_string(c, prog)),
            Op::Jump(t) => format!("jmp -> {t}"),
            Op::Pause => "pause".to_string(),
            Op::Label(l) => format!("label {l}"),
            Op::ExtPoint(id) => format!("ext #{id}"),
            Op::Halt => "halt".to_string(),
        };
        let _ = writeln!(out, "  {i:4}: {body}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::flat::flatten;
    use crate::program::{ArrayBacking, ProgramBuilder};

    #[test]
    fn renders_program_and_flat() {
        let mut pb = ProgramBuilder::new("demo");
        let a = pb.reg("a", 8);
        let t = pb.array("tab", 16, 8, ArrayBacking::BlockRam);
        let s_in = pb.sig_in("rdy", 1);
        pb.thread(
            "main",
            vec![forever(vec![
                if_then(sig(s_in), vec![assign(a, add(var(a), lit(1, 8)))]),
                arr_write(t, var(a), resize(var(a), 16)),
                pause(),
            ])],
        );
        let p = pb.build().unwrap();
        let text = program_to_string(&p);
        assert!(text.contains("program demo"));
        assert!(text.contains("reg a: u8"));
        assert!(text.contains("array tab: u16[8]"));
        assert!(text.contains("while 1'h1"));
        assert!(text.contains("$rdy"));

        let f = flatten(&p).unwrap();
        let dis = flat_to_string(&f.threads[0], &p);
        assert!(dis.contains("br"));
        assert!(dis.contains("pause"));
        assert!(dis.contains("halt"));
    }

    #[test]
    fn expr_rendering_covers_forms() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.reg("a", 16);
        let p = pb.build_for_test();
        let e = mux(
            eq(var(a), lit(3, 16)),
            concat(slice(var(a), 15, 8), lit(0, 8)),
            resize(neg(var(a)), 16),
        );
        let s = expr_to_string(&e, &p);
        assert!(s.contains('?'));
        assert!(s.contains("a[15:8]"));
        assert!(s.contains("16'("));
    }
}
