//! # Emu — a Rust reproduction of *Rapid Prototyping of Networking Services*
//!
//! This crate is the facade over the full reproduction of Sultana et al.,
//! USENIX ATC 2017. The paper's system — a standard library and HLS
//! toolchain that lets network services written in a high-level language
//! run unchanged on CPUs, in network simulation, and on NetFPGA — is
//! rebuilt here with every hardware dependency replaced by a simulator
//! (see `DESIGN.md` for the substitution table).
//!
//! ## Layout
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`types`] | `emu-types` | wide words, bit utilities, checksums, frames |
//! | [`ir`] | `kiwi-ir` | the IR + builder DSL + interpreter (CPU target) |
//! | [`compiler`] | `kiwi` | scheduling → FSM, resources, Verilog emission |
//! | [`rtl`] | `emu-rtl` | cycle-accurate executor + IP-block models |
//! | [`platform`] | `netfpga-sim` | NetFPGA pipeline model + baselines |
//! | [`stdlib`] | `emu-core` | the Emu standard library + multi-target runner |
//! | [`debug`] | `direction` | direction commands / controller / packets |
//! | [`services`] | `emu-services` | the eight §4 services |
//! | [`host`] | `hoststack` | Linux-path baseline model |
//! | [`simnet`] | `netsim` | Mininet-analogue network simulator |
//!
//! ## Quickstart
//!
//! ```
//! use emu::prelude::*;
//!
//! // Build the paper's learning switch and run it on the FPGA target.
//! let svc = emu::services::switch_ip_cam();
//! let mut inst = svc.instantiate(Target::Fpga).unwrap();
//! let mut frame = Frame::ethernet(
//!     MacAddr::from_u64(0xB), MacAddr::from_u64(0xA), 0x0800, &[0; 46]);
//! frame.in_port = 0;
//! let out = inst.process(&frame).unwrap();
//! assert_eq!(out.tx[0].ports, 0b1110); // unknown destination floods
//! ```
//!
//! ## Sharding and batching
//!
//! The paper's hardware scales by replicating the service pipeline across
//! parallel datapaths (§5.4 runs one Emu core per 10G port). The same
//! scale-out is available on every target through
//! [`ShardedEngine`](stdlib::ShardedEngine): `N` instances of one service
//! behind an RSS-style flow hash ([`stdlib::flow_hash`] — src/dst MAC,
//! IPv4 addresses, and TCP/UDP ports), so all frames of one 5-tuple land
//! on one shard and per-flow state (NAT mappings, cache entries) needs no
//! cross-shard coordination. Frames move through the
//! [`process_batch`](stdlib::ServiceInstance::process_batch) API, which
//! amortizes per-frame setup across back-to-back frames and reports batch
//! cycle costs for throughput accounting; a shard whose program traps is
//! poisoned and isolated while its siblings keep serving.
//!
//! ```
//! use emu::prelude::*;
//!
//! let svc = emu::services::icmp_echo();
//! let mut engine = svc.instantiate_sharded(Target::Fpga, 4).unwrap();
//! let pings: Vec<Frame> =
//!     (0..8).map(|i| emu::services::icmp::echo_request_frame(32, i)).collect();
//! let report = engine.process_batch(&pings);
//! assert_eq!(report.ok_count(), 8);
//! assert!(report.wall_cycles() <= report.shard_cycles.iter().sum::<u64>());
//! ```
//!
//! The Mininet-analogue target participates via
//! [`simnet::NetSim::add_service_sharded`], and
//! `cargo run --release -p emu-bench --bin scaling_shards` sweeps shard
//! counts 1/2/4/8 over the Table 4 services.

pub use direction as debug;
pub use emu_core as stdlib;
pub use emu_rtl as rtl;
pub use emu_services as services;
pub use emu_types as types;
pub use hoststack as host;
pub use kiwi as compiler;
pub use kiwi_ir as ir;
pub use netfpga_sim as platform;
pub use netsim as simnet;

/// The handful of names nearly every user needs.
pub mod prelude {
    pub use direction::{ControllerConfig, DirectionPacket, Director};
    pub use emu_core::{Service, ServiceInstance, ShardedBatch, ShardedEngine, Target};
    pub use emu_types::{Frame, Ipv4, MacAddr, Summary};
    pub use kiwi::{compile, emit, estimate, CostModel, IpBlock};
    pub use kiwi_ir::{dsl, ProgramBuilder};
    pub use netfpga_sim::{CoreMode, PipelineSim};
}
