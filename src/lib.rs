//! # Emu — a Rust reproduction of *Rapid Prototyping of Networking Services*
//!
//! This crate is the facade over the full reproduction of Sultana et al.,
//! USENIX ATC 2017. The paper's system — a standard library and HLS
//! toolchain that lets network services written in a high-level language
//! run unchanged on CPUs, in network simulation, and on NetFPGA — is
//! rebuilt here with every hardware dependency replaced by a simulator
//! (see `DESIGN.md` for the substitution table).
//!
//! ## Layout
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`types`] | `emu-types` | wide words, bit utilities, checksums, frames |
//! | [`ir`] | `kiwi-ir` | the IR + builder DSL + interpreter (CPU target) |
//! | [`compiler`] | `kiwi` | scheduling → FSM, resources, Verilog emission |
//! | [`rtl`] | `emu-rtl` | cycle-accurate executor + IP-block models |
//! | [`platform`] | `netfpga-sim` | NetFPGA pipeline model + baselines |
//! | [`stdlib`] | `emu-core` | the Emu standard library + multi-target runner |
//! | [`debug`] | `direction` | direction commands / controller / packets |
//! | [`services`] | `emu-services` | the eight §4 services |
//! | [`host`] | `hoststack` | Linux-path baseline model |
//! | [`simnet`] | `netsim` | Mininet-analogue network simulator |
//!
//! ## Quickstart
//!
//! ```
//! use emu::prelude::*;
//!
//! // Build the paper's learning switch and run it on the FPGA target.
//! let svc = emu::services::switch_ip_cam();
//! let mut inst = svc.instantiate(Target::Fpga).unwrap();
//! let mut frame = Frame::ethernet(
//!     MacAddr::from_u64(0xB), MacAddr::from_u64(0xA), 0x0800, &[0; 46]);
//! frame.in_port = 0;
//! let out = inst.process(&frame).unwrap();
//! assert_eq!(out.tx[0].ports, 0b1110); // unknown destination floods
//! ```

pub use direction as debug;
pub use emu_core as stdlib;
pub use emu_rtl as rtl;
pub use emu_services as services;
pub use emu_types as types;
pub use hoststack as host;
pub use kiwi as compiler;
pub use kiwi_ir as ir;
pub use netfpga_sim as platform;
pub use netsim as simnet;

/// The handful of names nearly every user needs.
pub mod prelude {
    pub use direction::{ControllerConfig, Director, DirectionPacket};
    pub use emu_core::{Service, ServiceInstance, Target};
    pub use emu_types::{Frame, Ipv4, MacAddr, Summary};
    pub use kiwi::{compile, emit, estimate, CostModel, IpBlock};
    pub use kiwi_ir::{dsl, ProgramBuilder};
    pub use netfpga_sim::{CoreMode, PipelineSim};
}
