//! # Emu — a Rust reproduction of *Rapid Prototyping of Networking Services*
//!
//! This crate is the facade over the full reproduction of Sultana et al.,
//! USENIX ATC 2017. The paper's system — a standard library and HLS
//! toolchain that lets network services written in a high-level language
//! run unchanged on CPUs, in network simulation, and on NetFPGA — is
//! rebuilt here with every hardware dependency replaced by a simulator
//! (see `DESIGN.md` for the substitution table).
//!
//! ## Layout
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`types`] | `emu-types` | wide words, bit utilities, checksums, frames |
//! | [`ir`] | `kiwi-ir` | the IR + builder DSL + interpreter (CPU target) |
//! | [`compiler`] | `kiwi` | scheduling → FSM, resources, Verilog emission |
//! | [`rtl`] | `emu-rtl` | cycle-accurate executor + IP-block models |
//! | [`platform`] | `netfpga-sim` | NetFPGA pipeline model + baselines |
//! | [`stdlib`] | `emu-core` | the Emu standard library + unified engine |
//! | [`debug`] | `direction` | direction commands / controller / packets |
//! | [`services`] | `emu-services` | the eight §4 services |
//! | [`host`] | `hoststack` | Linux-path baseline model |
//! | [`simnet`] | `netsim` | Mininet-analogue network simulator |
//! | [`hosts`] | `emu-hosts` | closed-loop endpoint agents + generated topologies |
//! | [`traffic`] | `emu-traffic` | seeded workload generators, checkers, record/replay |
//! | [`telemetry`] | `emu-telemetry` | counters, latency histograms, bench-report schema |
//!
//! ## Quickstart
//!
//! ```
//! use emu::prelude::*;
//!
//! // Build the paper's learning switch and run it on the FPGA target.
//! let svc = emu::services::switch_ip_cam();
//! let mut engine = svc.engine(Target::Fpga).build().unwrap();
//! let mut frame = Frame::ethernet(
//!     MacAddr::from_u64(0xB), MacAddr::from_u64(0xA), 0x0800, &[0; 46]);
//! frame.in_port = 0;
//! let out = engine.process(&frame).unwrap();
//! assert_eq!(out.tx[0].ports, 0b1110); // unknown destination floods
//! ```
//!
//! ## One engine, every deployment shape
//!
//! The paper's hardware scales by replicating the service pipeline across
//! parallel datapaths (§5.4 runs one Emu core per 10G port). Every
//! deployment shape — one pipeline or N, software or hardware target,
//! cost-model or real-thread execution — is one
//! [`Engine`](stdlib::Engine), configured through the builder returned by
//! [`Service::engine`](stdlib::Service::engine):
//!
//! ```
//! use emu::prelude::*;
//!
//! let svc = emu::services::icmp_echo();
//! let mut engine = svc.engine(Target::Fpga).shards(4).build().unwrap();
//! let pings: Vec<Frame> =
//!     (0..8).map(|i| emu::services::icmp::echo_request_frame(32, i)).collect();
//! let report = engine.process_batch(&pings);
//! assert_eq!(report.ok_count(), 8);
//! assert!(report.wall_cycles() <= report.total_cycles());
//! ```
//!
//! *Which shard* a frame runs on is a pluggable
//! [`Dispatch`](stdlib::Dispatch) policy: [`RssHash`](stdlib::RssHash)
//! (default — the Pearson flow hash, so one 5-tuple's frames share one
//! shard and per-flow state needs no coordination),
//! [`RoundRobin`](stdlib::RoundRobin) (stateless services), and
//! [`NatSteering`](stdlib::NatSteering) (steers NAT return traffic to
//! the shard that allocated the external port — see
//! `examples/sharded_nat.rs`). Batches execute shards sequentially under
//! the parallel-datapath cost model by default; `.parallel(true)` runs
//! them on real OS threads with identical results (compare with
//! `cargo run --release -p emu-bench --bin scaling_parallel`).
//!
//! A shard whose program traps is poisoned and isolated while its
//! siblings keep serving; every failure is an
//! [`EngineError`](stdlib::EngineError) naming the shard. The full
//! old-API → new-API migration table is in [`stdlib::engine`].
//!
//! The Mininet-analogue target takes the same engines via
//! [`simnet::NetSim::add_service`], and
//! `cargo run --release -p emu-bench --bin scaling_shards` sweeps shard
//! counts 1/2/4/8 over the Table 4 services.
//!
//! ## Execution backends
//!
//! On the Cpu target the service program can execute on either of two
//! software backends, selected with
//! [`EngineBuilder::backend`](stdlib::EngineBuilder::backend):
//!
//! * [`Backend::Compiled`](stdlib::Backend) (**default**) — each thread
//!   is lowered once, at build time, to a linear micro-op bytecode with
//!   explicit scratch registers, pre-resolved ids, pre-computed widths,
//!   and a `u64` fast path for values ≤ 64 bits, then run through the
//!   **cross-statement** optimization pass pipeline ([`ir::opt`]):
//!   observer-visibility analysis widens optimization regions past
//!   source-statement boundaries wherever no observer event intervenes,
//!   and the widened regions get constant folding, algebraic
//!   simplification, array-access strength reduction, redundant-load
//!   and common-subexpression elimination, loop-invariant load motion,
//!   adjacent-load pair fusion, copy propagation, slice/resize
//!   coalescing, and dead-scratch elimination. Pick it everywhere
//!   throughput matters — it is what the soak and scaling benches
//!   measure, and
//!   `cargo run --release -p emu-bench --bin backend_compare` prints the
//!   per-service speedup matrix.
//! * [`Backend::TreeWalk`](stdlib::Backend) — the recursive reference
//!   interpreter over the flattened statement stream ([`ir::interp`]).
//!   Pick it when debugging a suspected compiled-backend bug, or as the
//!   second opinion in differential tests. `EMU_CPU_BACKEND=treewalk`
//!   forces it process-wide without code changes (CI runs the whole
//!   test suite this way so the reference cannot rot).
//!
//! On top of backend choice, the Cpu engine runs batches in **lockstep**
//! by default ([`EngineBuilder::batching`](stdlib::EngineBuilder::batching)):
//! [`Engine::process_batch`](stdlib::Engine::process_batch) drives each
//! shard's frames through a monomorphized frame loop that keeps the
//! bytecode, scratch registers, and table state hot in cache across the
//! whole batch instead of re-entering the engine per frame. The batched
//! path mirrors the scalar path statement-for-statement — same driver,
//! same telemetry ticks, same observer hooks — so `BatchReport`s,
//! telemetry snapshots, and observer traces are byte-identical whether a
//! batch ran batched, scalar, or tree-walked.
//!
//! Three env knobs make the whole compilation story inspectable without
//! code changes: `EMU_CPU_BACKEND=treewalk|compiled` picks the backend,
//! `EMU_CPU_PASSES` overrides the pass list (`none` disables every
//! optimization; or a comma list like `const_fold,copy_prop` — the
//! builder mirror is
//! [`EngineBuilder::passes`](stdlib::EngineBuilder::passes)), and
//! `EMU_CPU_DUMP_MOPS=1` prints each thread's annotated micro-op listing
//! at build time. CI re-runs the entire suite under
//! `EMU_CPU_PASSES=none` so the unoptimized lowering stays a working
//! fallback and a miscompiling pass bisects with one env var.
//!
//! The two backends are **byte-identical in every observable**: machine
//! state after every cycle (registers, arrays, output signals), observer
//! traces (assignments, labels, extension points, in order), cycle and
//! op counts, trap messages, and per-frame engine outcomes. The Fpga
//! target stays the golden reference for both. This is enforced by
//! directed lockstep tests in `kiwi-ir`, random-program proptests across
//! all three executions in `tests/backend_equiv.rs`, and the soak
//! harness. Both backends also maintain the `arr_high` per-array
//! high-water contract ([`ir::interp::MachineState::arr_high`]): after
//! any run, `arr_high[a]` is one past the highest slot of array `a` that
//! may differ from zero. Platform drivers rely on it to bound per-frame
//! buffer re-initialization, so a backend that under-reports it corrupts
//! frame data and one that never resets it forfeits the batch fast path.
//!
//! ## Stateful tables at scale
//!
//! Every stateful service keeps its per-flow state in
//! [`rtl::CamTable`] — a hashed, cache-conscious index behind the same
//! CAM port protocol the RTL IP blocks speak — so lookups and writes
//! are O(1) in resident entries whether a table holds 10^3 or 10^6
//! flows. The capacity/expiry/eviction contract:
//!
//! * **Capacity** is configured per engine with
//!   [`EngineBuilder::table_entries`](stdlib::EngineBuilder::table_entries).
//!   Cpu deployments may request millions of entries (slots allocate
//!   lazily, so a sparsely-used million-entry table is cheap); the
//!   Fpga target refuses anything past the BRAM-sized
//!   [`FPGA_MAX_TABLE_ENTRIES`](stdlib::FPGA_MAX_TABLE_ENTRIES) — the
//!   paper's hardware resource wall, surfaced at build time instead of
//!   synthesis time. The same service code runs at either size.
//! * **Expiry** —
//!   [`EngineBuilder::ttl_frames`](stdlib::EngineBuilder::ttl_frames)
//!   arms TTL aging on a frame-count epoch: every admitted frame ticks
//!   the owning shard's tables, and an entry untouched for more than
//!   `ttl` ticks is expired — reclaimed lazily when its key or slot is
//!   next needed, plus a bounded background sweep per tick. NAT mapping
//!   timeout and switch MAC aging are this one mechanism.
//! * **Eviction** — a full table first reclaims its oldest expired
//!   entry; only when nothing has expired does round-robin eviction
//!   claim a live slot. Paired tables (NAT's forward/reverse maps,
//!   [`rtl::CamPair`]) stay in lockstep: evicting or expiring one side
//!   always removes its partner, and an expired mapping's external
//!   port becomes honestly re-allocatable.
//!
//! Per-table occupancy/hit/eviction/expiry counters ride the normal
//! telemetry snapshot ([`telemetry::CamCounters`]). The `flow_scale`
//! bench bin gates the O(1) claim — per-frame cost flat within 2x from
//! 10^3 to 10^6 live flows — and `soak` churns ≥1M frames per service
//! against million-entry TTL'd tables under shadow checkers that replay
//! the very same `CamTable`s, so expiry and eviction are *predicted*,
//! not tolerated.
//!
//! ## Generating traffic
//!
//! Hand-rolled frames stop scaling long before an engine does. The
//! [`traffic`] crate manufactures deterministic, seeded workloads —
//! stateful TCP conversations, Zipf-keyed memcached mixes, weighted DNS
//! queries, ARP/ICMP chatter, churn pools whose working set turns over
//! ([`traffic::FlowChurn`], [`traffic::MacChurn`]), and adversarial
//! malformations — that
//! compose by weight into a [`Mix`](traffic::Mix) and feed
//! [`Engine::process_batch`](stdlib::Engine::process_batch) directly:
//!
//! ```
//! use emu::prelude::*;
//! use emu::traffic::{Background, Mix, TcpConversations, TrafficGen};
//!
//! let svc = emu::services::switch_ip_cam();
//! let mut engine = svc.engine(Target::Cpu).shards(4).build().unwrap();
//! let mut mix = Mix::new(7)
//!     .add(3, TcpConversations::new(1, 8, &[0, 1, 2, 3]))
//!     .add(1, Background::new(2, &[0, 1, 2, 3]));
//! let frames = mix.take(64);
//! let report: BatchReport = engine.process_batch(&frames);
//! assert_eq!(report.ok_count(), 64);
//! assert!(report.tx_count() >= 64); // floods fan out
//! ```
//!
//! Reference checkers ([`traffic::NatChecker`], [`traffic::McModel`],
//! [`traffic::SwitchModel`]) consume each batch's
//! [`BatchReport`](stdlib::BatchReport) and assert service invariants
//! frame by frame; `cargo run --release -p emu-bench --bin soak` drives
//! ≥1M generated frames per service through 4-shard parallel engines
//! under those checkers, and [`traffic::Trace`] records any stream into
//! a byte-exact replay fixture (see `tests/fixtures/`). `netsim` links
//! accept seeded impairments — loss, duplication, reorder jitter — via
//! [`simnet::NetSim::impair`] (see `examples/traffic_soak.rs`).
//!
//! ## Observability
//!
//! Every engine keeps per-shard telemetry unless built with
//! [`EngineBuilder::telemetry`](stdlib::EngineBuilder::telemetry)`(false)`:
//! frame/byte counters per outcome (processed, oversize, trap,
//! poisoned) and a log-bucketed histogram of per-frame **model cycles**
//! with ≤ 1/32 relative quantile error
//! ([`telemetry::Histogram`]). Because it counts model cycles rather
//! than wall time, a snapshot is deterministic: sequential and parallel
//! execution — and the compiled and tree-walk backends — produce
//! *equal* [`EngineSnapshot`](telemetry::EngineSnapshot)s for the same
//! frames (asserted in `tests/telemetry_equiv.rs` and by the
//! `sustained` bench). [`simnet::NetSim::telemetry`] folds per-node
//! drops, impairment stats, and embedded engine snapshots into one JSON
//! document.
//!
//! ```
//! use emu::prelude::*;
//!
//! let svc = emu::services::icmp_echo();
//! let mut engine = svc.engine(Target::Cpu).shards(2).build().unwrap();
//! let pings: Vec<Frame> =
//!     (0..32).map(|i| emu::services::icmp::echo_request_frame(32, i)).collect();
//! engine.process_batch(&pings);
//! let total = engine.telemetry().unwrap().total();
//! assert_eq!(total.counters.frames, 32);
//! assert_eq!(total.counters.drops(), 0);
//! // Exact quantile bounds from the cycle histogram:
//! let (lo, hi) = total.cycles.quantile_bounds(0.99).unwrap();
//! assert!(lo <= hi && hi <= total.cycles.max().unwrap());
//! ```
//!
//! The bench bins all emit one versioned JSON envelope
//! ([`telemetry::BenchReport`], schema `emu-bench-report/v1`), so any
//! two runs diff mechanically. The canonical sustained-rate numbers
//! live in the committed `BENCH_*.json` trajectory (latest:
//! `BENCH_10.json`), regenerated by
//! `cargo run --release -p emu-bench --bin sustained -- --check --out BENCH_10.json`
//! and regression-gated in CI against the previous PR's record
//! (>10 % Mpps drop or >20 % p99 rise fails).
//!
//! ## Closed-loop hosts
//!
//! Open-loop streams measure what an engine *does*; they cannot measure
//! what a network *feels like*, because nothing in them reacts. The
//! [`hosts`] crate closes the loop: [`hosts::TcpClient`],
//! [`hosts::McClient`], and [`hosts::DnsClient`] are
//! [`simnet::HostAgent`]s living inside the event loop — they arm
//! retransmission timers, back off exponentially, suppress duplicated
//! responses, verify every answer against a model of the server, and
//! sample RTTs under Karn's rule into [`telemetry::Histogram`]s. With
//! [`simnet::NetSim::set_ns_per_cycle`] the service's model cycle count
//! becomes simulated processing latency, so the measured RTT is wire +
//! engine, deterministic per seed:
//!
//! ```
//! use emu::prelude::*;
//! use emu::hosts::{ClientConfig, TcpClient, KICK};
//!
//! let mut net = emu::simnet::NetSim::new();
//! net.set_ns_per_cycle(5.0); // the 200 MHz core clock of Table 4
//! let ping = emu::services::tcp_ping();
//! let server = net.add_service("ping", ping.engine(Target::Cpu).build().unwrap(), 1);
//! let client = net.add_agent(
//!     "prober",
//!     Box::new(TcpClient::new(
//!         "prober",
//!         MacAddr::from_u64(0x02_00_00_00_00_01), "10.0.0.1".parse().unwrap(), 40_000,
//!         MacAddr::from_u64(0x02_00_00_00_00_02), "10.0.0.2".parse().unwrap(), 7,
//!         1, ClientConfig { requests: 32, ..ClientConfig::default() },
//!     )),
//!     1,
//! );
//! net.link(client, 0, server, 0, 500.0, 10.0);
//! net.arm_timer(client, 0.0, KICK); // kick request #0; the rest self-schedule
//! net.run_until(f64::MAX).unwrap();
//! let probe = net.agent_as::<TcpClient>(client).unwrap();
//! assert_eq!(probe.stats().completed, 32); // every SYN got a verified SYN-ACK
//! // RTT ≥ two traversals of the 500 ns wire (plus service cycles).
//! assert!(probe.stats().rtt.quantile(0.5).unwrap() >= 1_000);
//! ```
//!
//! [`hosts::fat_tree`] scales the same machinery to whole topologies: a
//! seeded [`hosts::TopoSpec`] generates an edge-hierarchy fabric of
//! sharded learning-switch engines with impaired links, memcached, DNS,
//! and TCP-ping service leaves, and a closed-loop client on every
//! remaining slot; [`hosts::Topo::harvest`] merges the client-side
//! accounting and feeds every per-request outcome through
//! [`traffic::ClientCheck`]. The `topo` bench bin
//! (`cargo run --release -p emu-bench --bin topo`) sweeps impairment
//! levels over that fabric and emits goodput + RTT quantiles as
//! `emu-bench-report/v1` rows; `tests/closed_loop.rs` holds the
//! retries-recover-from-loss, duplicate-suppression, RTT-monotonicity,
//! and whole-topology differential (seq==par, compiled==treewalk)
//! suites.

pub use direction as debug;
pub use emu_core as stdlib;
pub use emu_hosts as hosts;
pub use emu_rtl as rtl;
pub use emu_services as services;
pub use emu_telemetry as telemetry;
pub use emu_traffic as traffic;
pub use emu_types as types;
pub use hoststack as host;
pub use kiwi as compiler;
pub use kiwi_ir as ir;
pub use netfpga_sim as platform;
pub use netsim as simnet;

/// The handful of names nearly every user needs.
pub mod prelude {
    pub use direction::{ControllerConfig, DirectionPacket, Director};
    pub use emu_core::{
        Backend, BatchReport, Dispatch, Engine, EngineBuilder, EngineError, NatSteering,
        RoundRobin, RssHash, Service, Target,
    };
    pub use emu_types::{Frame, Ipv4, MacAddr, Summary};
    pub use kiwi::{compile, emit, estimate, CostModel, IpBlock};
    pub use kiwi_ir::{dsl, ProgramBuilder};
    pub use netfpga_sim::{CoreMode, PipelineSim};
}
