//! Quickstart: write a tiny network function in the DSL, run it on both
//! execution targets, emit its Verilog, and read its utilization report.
//!
//! Run: `cargo run --release --example quickstart`

use emu::prelude::*;
use emu::stdlib::service_builder;
use kiwi_ir::dsl::*;

fn main() {
    // A MAC-swap responder: the "hello world" of network functions.
    // Compare the structure with the paper's Figure 2 — receive, decide,
    // transmit, done.
    let (mut pb, dp) = service_builder("macswap", 256);
    let scratch = pb.reg("scratch", 48);
    let n_frames = pb.reg("n_frames", 32);

    let mut body = vec![dp.rx_wait(), label("rx")];
    body.extend(dp.swap_macs(scratch));
    body.push(assign(n_frames, add(var(n_frames), lit(1, 32))));
    body.push(dp.set_output_port(dp.input_port()));
    body.extend(dp.transmit(dp.rx_len()));
    body.extend(dp.done());
    pb.thread("main", vec![forever(body)]);

    let service = Service::new(pb.build().expect("valid program"));

    // --- Run the SAME program on both targets -------------------------
    let mut frame = Frame::ethernet(
        MacAddr::from_u64(0x0a0b0c0d0e0f),
        MacAddr::from_u64(0x010203040506),
        0x0800,
        b"hello, emu!",
    );
    frame.in_port = 2;

    for target in [Target::Cpu, Target::Fpga] {
        let mut inst = service.engine(target).build().expect("instantiate");
        let out = inst.process(&frame).expect("process");
        println!(
            "{target:?} target: {} -> {} in {} cycles, out ports {:#06b}",
            out.tx[0].frame.src_mac(),
            out.tx[0].frame.dst_mac(),
            out.cycles,
            out.tx[0].ports,
        );
    }

    // --- Compile to hardware artefacts --------------------------------
    let fsm = compile(&service.program).expect("compile");
    let states: usize = fsm.threads.iter().map(|t| t.state_count()).sum();
    println!("\ncompiled FSM: {states} states");

    let report = estimate(&fsm, &[]);
    println!("\nutilization estimate:\n{report}");

    let verilog = emit(&fsm).expect("emit");
    println!("verilog: {} lines; first lines:", verilog.lines().count());
    for l in verilog.lines().take(8) {
        println!("  {l}");
    }
}
