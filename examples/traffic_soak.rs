//! Generated traffic through the Mininet-analogue target over an
//! impaired link: a seeded [`emu_traffic::Mix`] of TCP conversations
//! and ARP/ICMP chatter crosses a lossy, jittery, duplicating link into
//! a 4-shard learning switch, and the whole scenario is reproducible
//! from its seeds.
//!
//! Run: `cargo run --release --example traffic_soak`

use emu::prelude::*;
use emu_traffic::{Background, Mix, TcpConversations, TrafficGen};
use netsim::{Impairments, NetSim};

fn main() {
    let mut net = NetSim::new();
    let h = net.add_host("clients", 1);
    let svc = emu::services::switch_ip_cam();
    let engine = svc
        .engine(Target::Cpu)
        .shards(4)
        .build()
        .expect("switch engine");
    let sw = net.add_service("switch", engine, 4);
    let uplink = net.link(h, 0, sw, 0, 1_000.0, 10.0);
    net.impair(
        uplink,
        Impairments {
            loss: 0.05,
            duplicate: 0.02,
            reorder: 0.2,
            jitter_ns: 20_000.0,
            seed: 7,
        },
    );
    // Give the switch somewhere to forward: three more hosts.
    let edges: Vec<_> = (1..4)
        .map(|p| {
            let hp = net.add_host(&format!("h{p}"), 1);
            net.link(hp, 0, sw, p, 500.0, 10.0);
            hp
        })
        .collect();

    let mut mix = Mix::new(1)
        .add(3, TcpConversations::new(2, 16, &[0]))
        .add(1, Background::new(3, &[0]));
    let offered = 2_000u64;
    for i in 0..offered {
        net.send(h, 0, mix.next_frame(), i as f64 * 10_000.0);
    }
    net.run_until(1e12).expect("simulation runs");

    let stats = net.impair_stats;
    println!(
        "offered {offered} frames over the impaired uplink: \
         lost {}, duplicated {}, reordered {}",
        stats.lost, stats.duplicated, stats.reordered
    );
    assert_eq!(net.dropped_no_link, 0);
    assert!(stats.lost > 0 && stats.duplicated > 0 && stats.reordered > 0);
    let delivered: usize = edges.iter().map(|&hp| net.inbox(hp).len()).sum();
    println!("switch flooded/forwarded {delivered} frames to the edge hosts");
    assert!(delivered > 0);
    println!("ok: impaired-link soak is deterministic and live");
}
