//! The paper's portability showcase (§4.4): "We use the NAT service as a
//! test case, compiling it to three different targets: software, Mininet,
//! and hardware." The same program runs on the CPU interpreter, inside
//! the network simulator, and on the cycle-accurate FPGA backend — and
//! produces byte-identical translations on all three.
//!
//! Run: `cargo run --release --example nat_three_targets`

use emu::prelude::*;
use emu::services::nat::{nat, udp_frame};
use emu::simnet::NetSim;

fn main() {
    let public: Ipv4 = "203.0.113.1".parse().expect("valid");
    let internal: Ipv4 = "192.168.1.50".parse().expect("valid");
    let remote: Ipv4 = "8.8.8.8".parse().expect("valid");

    let outbound = udp_frame(internal, 3333, remote, 53, 2);

    // --- target 1 & 2: software (CPU) and hardware (FPGA) ---------------
    let mut results = Vec::new();
    for target in [Target::Cpu, Target::Fpga] {
        let svc = nat(public);
        let mut inst = svc.engine(target).build().expect("instantiate");
        let out = inst.process(&outbound).expect("process");
        println!(
            "{target:?}: translated src -> {}.{}.{}.{}:{} ({} cycles)",
            out.tx[0].frame.bytes()[26],
            out.tx[0].frame.bytes()[27],
            out.tx[0].frame.bytes()[28],
            out.tx[0].frame.bytes()[29],
            emu_types::bitutil::get16(out.tx[0].frame.bytes(), 34),
            out.cycles
        );
        results.push(out.tx[0].frame.clone());
    }

    // --- target 3: the Mininet analogue ----------------------------------
    // h_int --(port 2)-- [NAT] --(port 0)-- h_ext
    let mut net = NetSim::new();
    let svc = nat(public);
    let nat_node = net.add_service(
        "nat",
        svc.engine(Target::Cpu).build().expect("build engine"),
        4,
    );
    let h_int = net.add_host("h_int", 1);
    let h_ext = net.add_host("h_ext", 1);
    net.link(h_int, 0, nat_node, 2, 1_000.0, 10.0);
    net.link(h_ext, 0, nat_node, 0, 5_000.0, 10.0);

    net.send(h_int, 0, outbound.clone(), 0.0);
    net.run_until(1e9).expect("run");
    let arrived = net.inbox(h_ext);
    println!(
        "netsim: frame reached the external host at t = {:.0} ns",
        arrived[0].t_ns
    );
    results.push(arrived[0].frame.clone());

    // --- all three agree --------------------------------------------------
    assert_eq!(results[0].bytes(), results[1].bytes(), "cpu vs fpga");
    assert_eq!(results[0].bytes(), results[2].bytes(), "cpu vs netsim");
    println!("\nall three targets produced byte-identical translations ✓");

    // And the return path works across the simulated network too.
    let reply = udp_frame(remote, 53, public, emu::services::nat::FIRST_EPHEMERAL, 0);
    net.send(h_ext, 0, reply, 1e6);
    net.run_until(2e9).expect("run");
    let back = net.inbox(h_int);
    println!(
        "return path: translated back to {}.{}.{}.{}:{} and delivered to the internal host ✓",
        back[0].frame.bytes()[30],
        back[0].frame.bytes()[31],
        back[0].frame.bytes()[32],
        back[0].frame.bytes()[33],
        emu_types::bitutil::get16(back[0].frame.bytes(), 36),
    );
}
