//! Scale-out NAT: one service program, four replicated pipelines.
//!
//! Builds the paper's §4.4 NAT service, instantiates it through the
//! sharded engine (`instantiate_sharded`), and pushes a batch of flows
//! through it — showing RSS flow dispatch, per-flow mapping stability on
//! stateful services, and the parallel-datapath throughput model.
//!
//! Run: `cargo run --release --example sharded_nat`

use emu::prelude::*;
use emu::services::nat;
use emu::types::bitutil;

fn main() {
    let public: emu::types::Ipv4 = "203.0.113.1".parse().unwrap();
    let svc = nat::nat(public);
    let shards = 4;
    let mut engine = svc
        .instantiate_sharded(Target::Fpga, shards)
        .expect("instantiate");
    println!("NAT on {} FPGA pipelines, public {public}\n", shards);

    // Eight client flows (distinct source ports), three frames each.
    let frames: Vec<Frame> = (0..24u64)
        .map(|i| {
            let flow = (i % 8) as u16;
            let mut f = nat::udp_frame(
                "192.168.1.50".parse().unwrap(),
                4000 + flow,
                "8.8.8.8".parse().unwrap(),
                53,
                1 + (flow % 3) as u8,
            );
            f.in_port = 1 + (flow % 3) as u8;
            f
        })
        .collect();

    let report = engine.process_batch(&frames);
    println!("flow  sport -> shard  ext-port (stable across frames)");
    for (flow, f) in frames.iter().enumerate().take(8) {
        let shard = engine.shard_of(f);
        let ports: Vec<u16> = report
            .outputs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 8 == flow)
            .map(|(_, o)| bitutil::get16(o.as_ref().unwrap().tx[0].frame.bytes(), 34))
            .collect();
        assert!(ports.windows(2).all(|w| w[0] == w[1]), "mapping drifted");
        println!(
            "  {flow}   {:>5} ->   {shard}      {}",
            4000 + flow,
            ports[0]
        );
    }

    let wall_ns = report.wall_cycles() as f64 * emu::platform::timing::NS_PER_CYCLE;
    println!(
        "\n{} frames ok, busiest shard {} cycles -> {:.2} Mq/s aggregate",
        report.ok_count(),
        report.wall_cycles(),
        frames.len() as f64 / (wall_ns / 1e9) / 1e6
    );
    println!("shard busy cycles: {:?}", report.shard_cycles);
}
