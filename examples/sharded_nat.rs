//! Scale-out NAT with bidirectional traffic: one service program, four
//! replicated pipelines, and a dispatch policy that solves what RSS
//! cannot — steering *return* traffic to the owning shard.
//!
//! Builds the paper's §4.4 NAT service and runs it through the unified
//! engine (`svc.engine(target).shards(4).dispatch(NatSteering)`):
//! outbound flows dispatch by the RSS flow hash; each shard allocates
//! external ports from its own residue class of the ephemeral range
//! (shard k hands out `FIRST_EPHEMERAL + k`, stepping by 4); inbound
//! replies are steered by their destination port back to the allocating
//! shard, where the reverse mapping lives. Under plain RSS the reply
//! 5-tuple hashes independently and most replies would be dropped —
//! `tests/sharding.rs` asserts exactly that failure.
//!
//! Run: `cargo run --release --example sharded_nat`

use emu::prelude::*;
use emu::services::nat;
use emu::types::bitutil;

fn main() {
    let public: emu::types::Ipv4 = "203.0.113.1".parse().unwrap();
    let svc = nat::nat(public);
    let shards = 4;
    let mut engine = svc
        .engine(Target::Fpga)
        .shards(shards)
        .dispatch(NatSteering::default())
        .build()
        .expect("build engine");
    println!(
        "NAT on {} FPGA pipelines, public {public}, dispatch `{}`\n",
        shards,
        engine.dispatch_name()
    );

    // Eight client flows (distinct source ports) send outbound...
    let outbound: Vec<Frame> = (0..8u16)
        .map(|flow| {
            let mut f = nat::udp_frame(
                "192.168.1.50".parse().unwrap(),
                4000 + flow,
                "8.8.8.8".parse().unwrap(),
                53,
                1 + (flow % 3) as u8,
            );
            f.in_port = 1 + (flow % 3) as u8;
            f
        })
        .collect();

    println!("flow  sport -> out-shard  ext-port   reply -> in-shard");
    let mut replies = Vec::new();
    for (flow, f) in outbound.iter().enumerate() {
        let out_shard = engine.shard_of(f);
        let out = engine.process(f).expect("outbound");
        let ext = bitutil::get16(out.tx[0].frame.bytes(), 34);
        // The remote answers the public address at the allocated port.
        let reply = nat::udp_frame("8.8.8.8".parse().unwrap(), 53, public, ext, 0);
        let in_shard = engine.shard_of(&reply);
        assert_eq!(
            in_shard, out_shard,
            "reply must steer to the allocating shard"
        );
        assert_eq!(
            usize::from(ext - nat::FIRST_EPHEMERAL) % shards,
            out_shard,
            "allocated port must come from the shard's residue class"
        );
        println!(
            "  {flow}   {:>5} ->     {out_shard}      {ext}       :{ext} ->    {in_shard}",
            4000 + flow,
        );
        replies.push(reply);
    }

    // ...and every reply is translated back to the internal client.
    let report = engine.process_batch(&replies);
    assert_eq!(report.ok_count(), replies.len());
    for (flow, out) in report.outputs.iter().enumerate() {
        let tx = &out.as_ref().expect("reply processed").tx;
        assert_eq!(tx.len(), 1, "flow {flow}: reply must not be dropped");
        let b = tx[0].frame.bytes();
        assert_eq!(&b[30..34], &[192, 168, 1, 50], "flow {flow}");
        assert_eq!(
            bitutil::get16(b, 36),
            4000 + flow as u16,
            "flow {flow}: wrong internal port"
        );
    }
    println!(
        "\nall {} replies steered to their owning shard and translated back ✓",
        replies.len()
    );

    let wall_ns = report.wall_cycles() as f64 * emu::platform::timing::NS_PER_CYCLE;
    println!(
        "reply batch: busiest shard {} cycles -> {:.2} Mq/s aggregate",
        report.wall_cycles(),
        replies.len() as f64 / (wall_ns / 1e9) / 1e6
    );
    println!("shard busy cycles: {:?}", report.shard_cycles);
}
