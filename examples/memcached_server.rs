//! The paper's Memcached-in-hardware use case (§4.3): run the service
//! under a memaslap-style 90/10 workload, print the latency distribution
//! next to the Linux host baseline, and demonstrate a live GET/SET
//! conversation.
//!
//! Run: `cargo run --release --example memcached_server`

use emu::host::HostProfile;
use emu::prelude::*;
use emu::services::memcached::{memcached, reply_text, request_frame};
use emu::stdlib::Service;
use hoststack::Memaslap;

fn main() {
    let svc: Service = memcached();

    // --- a live conversation -------------------------------------------
    println!("== conversation ==");
    let mut inst = svc.engine(Target::Fpga).build().expect("instantiate");
    for body in [
        "set motd 0 0 8\r\nHELLOEMU\r\n",
        "get motd\r\n",
        "delete motd\r\n",
        "get motd\r\n",
    ] {
        let out = inst.process(&request_frame(body, 1)).expect("request");
        let reply =
            String::from_utf8_lossy(&reply_text(&out.tx[0].frame)).replace("\r\n", "\\r\\n");
        println!("  {:<34} -> {}", body.replace("\r\n", "\\r\\n"), reply);
    }

    // --- memaslap-style latency run --------------------------------------
    let inst = svc.engine(Target::Fpga).build().expect("instantiate");
    let (driver, env) = inst.into_fpga_parts().expect("fpga");
    let mut sim = PipelineSim::new_emu(driver, env, CoreMode::Iterative);

    let mut gen = Memaslap::new(64, 0.9, 7);
    let mut t = 0.0;
    for (i, op) in gen.warmup().iter().enumerate() {
        let mut f = request_frame(&op.request_body(), i as u16);
        f.in_port = (i % 4) as u8;
        sim.inject(&f, t).expect("warm");
        t += 10_000.0;
    }
    let warmed = sim.records().len();
    for (i, op) in gen.ops(5_000).iter().enumerate() {
        let mut f = request_frame(&op.request_body(), i as u16);
        f.in_port = (i % 4) as u8;
        sim.inject(&f, t).expect("inject");
        t += 9_973.0;
    }
    let lat: Vec<f64> = sim.records()[warmed..]
        .iter()
        .filter_map(|r| r.t_out_ns.map(|o| o - r.t_in_ns))
        .collect();
    let emu = Summary::of(&lat).expect("samples");

    let host = HostProfile::memcached().latency_run(100_000, 42);
    println!("\n== latency: 90% GET / 10% SET ==");
    println!(
        "           {:>10} {:>10} {:>10} {:>12}",
        "mean (us)", "p50 (us)", "p99 (us)", "tail/avg"
    );
    println!(
        "emu (hw) : {:>10.2} {:>10.2} {:>10.2} {:>12.3}",
        emu.mean / 1e3,
        emu.p50 / 1e3,
        emu.p99 / 1e3,
        emu.tail_to_average()
    );
    println!(
        "linux    : {:>10.2} {:>10.2} {:>10.2} {:>12.3}",
        host.mean / 1e3,
        host.p50 / 1e3,
        host.p99 / 1e3,
        host.tail_to_average()
    );
    println!("\npaper (Table 4): emu 1.21/1.26 us, host 24.29/28.65 us;");
    println!("'even an extra 20 us are enough to lose 25% throughput' (§4.3)");
}
