//! The §5.5 debugging story: extend a running service with a direction
//! controller, then interrogate it with in-band direction packets — the
//! way the paper's authors found their Memcached checksum bug ("directing
//! the packets to report the checksum calculated within Emu revealed a
//! bug in the checksum implementation").
//!
//! Run: `cargo run --release --example debug_directed`

use emu::debug::{extend_program, parse, ControllerConfig, Director, Outcome};
use emu::prelude::*;
use emu::services::memcached::{memcached, request_frame};
use emu::stdlib::Service;

fn main() {
    // Take the stock Memcached service and compile in a controller that
    // can read its statistics registers and trace them (Figure 11).
    let base = memcached();
    let cfg = ControllerConfig::full(&["n_get", "n_set", "n_hit"], 32);
    let directed = extend_program(&base.program, &cfg).expect("transform");
    let svc = Service::with_sized_env(directed, move |cfg| (base.make_env)(cfg));

    let mut inst = svc.engine(Target::Fpga).build().expect("instantiate");
    let director = Director::new(vec!["n_get".into(), "n_set".into(), "n_hit".into()]);

    // Arm a trace on n_hit (captured at the service's extension point on
    // every main-loop iteration).
    director
        .run(&mut inst, &parse("trace start n_hit 16").expect("cmd"))
        .expect("trace start");

    // Live traffic.
    println!("== traffic ==");
    for body in [
        "set k1 0 0 8\r\nAAAAAAAA\r\n",
        "get k1\r\n",
        "get k2\r\n",
        "get k1\r\n",
        "get k1\r\n",
    ] {
        inst.process(&request_frame(body, 1)).expect("request");
        println!("  sent {}", body.replace("\r\n", "\\r\\n"));
    }

    // Interrogate the running service, gdb-style, over the wire.
    println!("\n== direction session (in-band packets) ==");
    for cmd in ["print n_get", "print n_set", "print n_hit"] {
        let out = director
            .run(&mut inst, &parse(cmd).expect("cmd"))
            .expect("exchange");
        println!("  (emu-dbg) {cmd:<14} -> {out:?}");
    }

    let out = director
        .run(&mut inst, &parse("trace print n_hit").expect("cmd"))
        .expect("trace print");
    if let Outcome::Values(vals) = out {
        println!("  (emu-dbg) trace print n_hit -> {vals:?}");
        println!("\nThe trace shows n_hit's value at each loop iteration — the");
        println!("§5.5 method: watch an internal value evolve without stopping");
        println!("the service or attaching an RTL simulator.");
    }

    // The controller costs almost nothing (Table 5):
    let base_fsm = compile(&memcached().program).expect("compile");
    let dir_fsm = compile(&svc.program).expect("compile");
    let b = estimate(&base_fsm, &[]).logic as f64;
    let d = estimate(&dir_fsm, &[]).logic as f64;
    println!(
        "\ncontroller logic overhead: {:.1}% (paper Table 5: ±a few %)",
        100.0 * d / b - 100.0
    );
}
