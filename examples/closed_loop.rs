//! Closed-loop endpoints: a generated fat-tree under impairments, and a
//! NAT whose return traffic is bounced by a native peer.
//!
//! Part 1 builds the seeded edge-hierarchy fabric — sharded learning
//! switches, memcached + DNS + TCP-ping service leaves, a closed-loop
//! client on every remaining slot — impairs every link, runs the whole
//! thing to quiescence, and feeds each client's per-request outcomes
//! through the end-to-end checker.
//!
//! Part 2 replaces the old soak-harness pattern (drain NAT outputs,
//! synthesize peer replies by hand) with `emu::hosts::Responder`: the
//! external peer answers translated frames *inside* the event loop, so
//! the inbound-translation path runs natively.
//!
//! Run: `cargo run --release --example closed_loop`

use emu::hosts::{fat_tree, Responder, TopoSpec};
use emu::prelude::*;
use emu::simnet::{Impairments, NetSim};
use emu::traffic::ClientCheck;

fn main() {
    // --- part 1: the impaired fat-tree ---------------------------------
    let spec = TopoSpec {
        impair: Some(Impairments {
            loss: 0.02,
            duplicate: 0.01,
            reorder: 0.05,
            jitter_ns: 2_000.0,
            seed: 99,
        }),
        ..TopoSpec::default()
    };
    let mut topo = fat_tree(spec).expect("engines build");
    println!(
        "fat-tree: {} switches + {} services ({} engines), {} clients",
        topo.switches.len(),
        topo.services.len(),
        topo.engines(),
        topo.clients.len()
    );
    topo.start();
    topo.run().expect("run to quiescence");

    let mut check = ClientCheck::new(spec.client.retries).rtt_floor_ns(topo.rtt_floor_ns());
    let sum = topo.harvest(&mut check);
    println!(
        "closed loop: {} issued, {} completed, {} timeouts, {} retransmits, \
         {} duplicates suppressed",
        sum.issued, sum.completed, sum.timeouts, sum.retransmits, sum.duplicates
    );
    println!(
        "rtt p50 = {} ns, p99 = {} ns, goodput = {:.0} req/s",
        sum.rtt.quantile(0.50).unwrap_or(0),
        sum.rtt.quantile(0.99).unwrap_or(0),
        sum.goodput_rps()
    );
    assert_eq!(check.violations(), 0, "notes: {:?}", check.notes());
    assert!(sum.completed > 0);
    println!("checker: {} outcomes, 0 violations", check.frames());

    // --- part 2: NAT return traffic bounced natively --------------------
    let public: Ipv4 = "203.0.113.1".parse().expect("valid");
    let internal: Ipv4 = "192.168.1.50".parse().expect("valid");
    let remote: Ipv4 = "8.8.8.8".parse().expect("valid");

    let mut net = NetSim::new();
    let nat_node = net.add_service(
        "nat",
        emu::services::nat::nat(public)
            .engine(Target::Cpu)
            .build()
            .expect("build"),
        4,
    );
    let h_int = net.add_host("h_int", 1);
    let peer = net.add_agent("peer", Box::new(Responder::new(b"pong")), 1);
    net.link(h_int, 0, nat_node, 2, 1_000.0, 10.0);
    net.link(peer, 0, nat_node, 0, 5_000.0, 10.0);

    let outbound = emu::services::nat::udp_frame(internal, 3333, remote, 53, 2);
    net.send(h_int, 0, outbound, 0.0);
    net.run_until(1e9).expect("run");

    let back = net.inbox(h_int);
    assert_eq!(back.len(), 1, "the peer's reply must translate back in");
    let b = back[0].frame.bytes();
    println!(
        "nat loop closed natively: reply for {}.{}.{}.{}:{} arrived at t = {:.0} ns",
        b[30],
        b[31],
        b[32],
        b[33],
        emu_types::bitutil::get16(b, 36),
        back[0].t_ns
    );
    let replied = net
        .agent_as::<Responder>(peer)
        .expect("peer is a responder")
        .replied;
    assert_eq!(replied, 1);
}
