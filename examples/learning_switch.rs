//! The paper's flagship use case (§4.1, Figure 2): the L2 learning
//! switch, driven through the full NetFPGA pipeline model at line rate,
//! with its utilization report and Verilog output.
//!
//! Run: `cargo run --release --example learning_switch`

use emu::platform::{timing, NativeCore, RefSwitchCore};
use emu::prelude::*;
use emu::services::switch::{switch_ip_cam, switch_ip_cam_blocks};

fn frame(src: u64, dst: u64, port: u8) -> Frame {
    let mut f = Frame::ethernet(
        MacAddr::from_u64(dst),
        MacAddr::from_u64(src),
        0x0800,
        &[0; 46],
    );
    f.in_port = port;
    f
}

fn main() {
    let svc = switch_ip_cam();

    // --- watch it learn ------------------------------------------------
    let mut inst = svc.engine(Target::Fpga).build().expect("instantiate");
    println!("== learning demonstration ==");
    let out = inst.process(&frame(0xA, 0xB, 0)).expect("frame");
    println!(
        "A@0 -> B : out ports {:#06b} (flooded: B unknown)",
        out.tx[0].ports
    );
    let out = inst.process(&frame(0xB, 0xA, 1)).expect("frame");
    println!(
        "B@1 -> A : out ports {:#06b} (unicast: A learned)",
        out.tx[0].ports
    );
    let out = inst.process(&frame(0xA, 0xB, 0)).expect("frame");
    println!(
        "A@0 -> B : out ports {:#06b} (unicast: B learned)",
        out.tx[0].ports
    );
    println!(
        "module latency: {} cycles (paper: 8, reference: 6)",
        out.cycles
    );

    // --- line-rate sweep through the pipeline ---------------------------
    let inst = svc.engine(Target::Fpga).build().expect("instantiate");
    let (driver, env) = inst.into_fpga_parts().expect("fpga");
    let mut sim = PipelineSim::new_emu(driver, env, CoreMode::Streaming);
    for p in 0..4u8 {
        sim.inject(&frame(100 + u64::from(p), 0xEE, p), f64::from(p) * 100.0)
            .expect("learn");
    }
    let gap = timing::wire_ns(64) / 4.0;
    let mut t = 1000.0;
    for i in 0..20_000u64 {
        let port = (i % 4) as u8;
        let dst = 100 + (u64::from(port) + 1) % 4;
        sim.inject(&frame(100 + u64::from(port), dst, port), t)
            .expect("inject");
        t += gap;
    }
    println!(
        "\n== line-rate sweep ==\nthroughput: {:.2} Mpps (line rate {:.2}), drops: {}",
        sim.throughput_pps() / 1e6,
        timing::line_rate_pps(64) / 1e6,
        sim.queue_drops
    );

    // --- resources vs the hand-written reference ------------------------
    let fsm = compile(&svc.program).expect("compile");
    let emu_res = estimate(&fsm, &switch_ip_cam_blocks());
    let ref_res = RefSwitchCore::new().resources();
    println!("\n== utilization ==");
    println!(
        "emu switch     : logic {:>6}, memory {:>4}",
        emu_res.logic, emu_res.memory
    );
    println!(
        "reference (HDL): logic {:>6}, memory {:>4}",
        ref_res.logic, ref_res.memory
    );

    let v = emit(&fsm).expect("emit");
    println!(
        "\ngenerated Verilog: {} lines (paper: ~500 for the switch)",
        v.lines().count()
    );
}
