//! Property-based differential tests: random traffic through the same
//! service on both execution targets, and random programs through the
//! interpreter and the cycle-accurate executor, must agree exactly.

use emu::prelude::*;
use emu::services as s;
use emu_traffic::{
    Adversarial, Background, DnsWeighted, FlowChurn, MacChurn, MemcachedZipf, Mix,
    TcpConversations, TrafficGen,
};
use kiwi_ir::dsl::*;
use kiwi_ir::interp::{NullEnv, NullObserver};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn switch_targets_agree_on_random_traffic(
        seeds in proptest::collection::vec((0u64..16, 0u64..16, 0u8..4), 1..24)
    ) {
        let svc = s::switch::switch_ip_cam();
        let mut cpu = svc.engine(Target::Cpu).build().unwrap();
        let mut fpga = svc.engine(Target::Fpga).build().unwrap();
        for (i, (src, dst, port)) in seeds.iter().enumerate() {
            let mut f = Frame::ethernet(
                MacAddr::from_u64(0x100 + dst),
                MacAddr::from_u64(0x100 + src),
                0x0800,
                &[0u8; 46],
            );
            f.in_port = *port;
            let a = cpu.process(&f).unwrap();
            let b = fpga.process(&f).unwrap();
            prop_assert_eq!(&a.tx, &b.tx, "frame {}", i);
        }
    }

    #[test]
    fn memcached_targets_agree_on_random_scripts(
        ops in proptest::collection::vec((0u8..3, 0u64..8), 1..16)
    ) {
        let svc = s::memcached::memcached();
        let mut cpu = svc.engine(Target::Cpu).build().unwrap();
        let mut fpga = svc.engine(Target::Fpga).build().unwrap();
        for (i, (kind, key)) in ops.iter().enumerate() {
            let body = match kind {
                0 => format!("get key{key}\r\n"),
                1 => format!("set key{key} 0 0 8\r\nV{key:07}\r\n"),
                _ => format!("delete key{key}\r\n"),
            };
            let f = s::memcached::request_frame(&body, i as u16);
            let a = cpu.process(&f).unwrap();
            let b = fpga.process(&f).unwrap();
            prop_assert_eq!(&a.tx, &b.tx, "op {}: {}", i, body);
        }
    }

    #[test]
    fn random_straightline_programs_interp_equals_rtl(
        vals in proptest::collection::vec((0u64..1u64<<32, 0u8..6), 2..20)
    ) {
        // Build a random straight-line program over three registers.
        let mut pb = ProgramBuilder::new("rand");
        let a = pb.reg("a", 64);
        let b = pb.reg("b", 64);
        let c = pb.reg("c", 64);
        let regs = [a, b, c];
        let mut body = Vec::new();
        for (i, (v, op)) in vals.iter().enumerate() {
            let dst = regs[i % 3];
            let srcv = var(regs[(i + 1) % 3]);
            let k = lit(*v, 64);
            let e = match op {
                0 => add(srcv, k),
                1 => sub(srcv, k),
                2 => mul(srcv, k),
                3 => bxor(srcv, k),
                4 => shl(srcv, lit(v % 63, 8)),
                _ => mux(gt(srcv.clone(), k.clone()), srcv, k),
            };
            body.push(assign(dst, e));
            if i % 3 == 2 {
                body.push(pause());
            }
        }
        body.push(halt());
        pb.thread("main", body);
        let prog = pb.build().unwrap();

        let mut interp = kiwi_ir::Machine::new(kiwi_ir::flatten(&prog).unwrap());
        interp.run_cycles(10_000, &mut NullEnv, &mut NullObserver).unwrap();

        // A tight budget forces extra state splits — results must agree.
        let fsm = kiwi::compile_with(&prog, CostModel { period_units: 10, clock_hz: 200_000_000 }).unwrap();
        let mut rtl = emu::rtl::RtlMachine::new(fsm);
        rtl.run_cycles(100_000, &mut NullEnv, &mut NullObserver).unwrap();

        prop_assert!(interp.halted() && rtl.halted());
        for i in 0..3 {
            prop_assert_eq!(
                &interp.state().vars[i], &rtl.state().vars[i],
                "register {} diverged", i
            );
        }
    }

    #[test]
    fn nat_targets_agree_on_random_traffic(
        ops in proptest::collection::vec((0u8..4, 0u16..12, 0u8..3), 1..20)
    ) {
        // Random interleavings of outbound flows (varying sport/in_port),
        // inbound replies to already- or never-allocated external ports,
        // and non-IP noise: both targets must translate identically,
        // including identical drop decisions and checksum updates.
        let public: emu_types::Ipv4 = "203.0.113.1".parse().unwrap();
        let svc = s::nat::nat(public);
        let mut cpu = svc.engine(Target::Cpu).build().unwrap();
        let mut fpga = svc.engine(Target::Fpga).build().unwrap();
        for (i, (kind, flow, port)) in ops.iter().enumerate() {
            let f = match kind {
                0 | 1 => s::nat::udp_frame(
                    "192.168.1.50".parse().unwrap(),
                    3000 + flow,
                    "8.8.8.8".parse().unwrap(),
                    53,
                    1 + port % 3,
                ),
                2 => s::nat::udp_frame(
                    "8.8.8.8".parse().unwrap(),
                    53,
                    public,
                    s::nat::FIRST_EPHEMERAL + flow,
                    0,
                ),
                _ => Frame::ethernet(
                    MacAddr::from_u64(0x20 + u64::from(*flow)),
                    MacAddr::from_u64(0x30),
                    0x0806,
                    &[0u8; 46],
                ),
            };
            let a = cpu.process(&f).unwrap();
            let b = fpga.process(&f).unwrap();
            prop_assert_eq!(&a.tx, &b.tx, "op {}: kind {} flow {}", i, kind, flow);
        }
    }

    #[test]
    fn dns_targets_agree_on_random_queries(
        ops in proptest::collection::vec((0u8..5, any::<u16>(), 0u8..4), 1..20)
    ) {
        // Zone hits, misses, and varying transaction ids / arrival ports:
        // responses (and refusals) must match bit-for-bit across targets.
        let zone = vec![
            ("a.b".to_string(), "1.2.3.4".parse().unwrap()),
            ("example.com".to_string(), "93.184.216.34".parse().unwrap()),
            ("emu.cam.ac.uk".to_string(), "128.232.0.20".parse().unwrap()),
        ];
        let svc = s::dns::dns_server(zone);
        let mut cpu = svc.engine(Target::Cpu).build().unwrap();
        let mut fpga = svc.engine(Target::Fpga).build().unwrap();
        let names = ["a.b", "example.com", "emu.cam.ac.uk", "miss.example", "x.y"];
        for (i, (which, id, port)) in ops.iter().enumerate() {
            let mut f = s::dns::query_frame(names[usize::from(*which) % names.len()], *id);
            f.in_port = *port;
            let a = cpu.process(&f).unwrap();
            let b = fpga.process(&f).unwrap();
            prop_assert_eq!(&a.tx, &b.tx, "query {}: {}", i, names[usize::from(*which) % names.len()]);
        }
    }

    #[test]
    fn icmp_replies_always_checksum_valid(len in 0usize..512, seq in any::<u16>()) {
        let svc = s::icmp::icmp_echo();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let req = s::icmp::echo_request_frame(len, seq);
        let out = inst.process(&req).unwrap();
        prop_assert_eq!(out.tx.len(), 1);
        let b = out.tx[0].frame.bytes();
        let total = emu_types::bitutil::get16(b, 16) as usize;
        prop_assert!(emu_types::checksum::verify(&b[34..14 + total]));
        prop_assert!(emu_types::checksum::verify(&b[14..34]));
    }

    #[test]
    fn flow_affine_policies_keep_a_tuple_on_one_shard(
        flows in proptest::collection::vec((1u64..64, 1024u16..60_000, 0usize..400), 1..12),
        shards in 2usize..9
    ) {
        // For every flow-affine dispatch policy, all frames of one
        // 5-tuple — whatever their payload size — land on one shard.
        // (`RoundRobin` is deliberately not flow-affine, which is why it
        // is documented as stateless-only.)
        let svc = s::nat::nat("203.0.113.1".parse().unwrap());
        let policies: Vec<(&str, Engine)> = vec![
            ("rss-hash", svc.engine(Target::Cpu).shards(shards).build().unwrap()),
            (
                "nat-steering",
                svc.engine(Target::Cpu)
                    .shards(shards)
                    .dispatch(NatSteering::default())
                    .build()
                    .unwrap(),
            ),
        ];
        for (name, engine) in &policies {
            for (mac, sport, extra) in &flows {
                let frame = |extra: usize| {
                    let mut f = s::nat::udp_frame(
                        emu_types::Ipv4::new(10, 0, (*mac % 250) as u8 + 1, 2),
                        *sport,
                        "8.8.8.8".parse().unwrap(),
                        53,
                        1,
                    );
                    let mut bytes = f.bytes().to_vec();
                    bytes.extend(std::iter::repeat_n(0x5a, extra));
                    let mut g = Frame::new(bytes);
                    g.in_port = f.in_port;
                    f = g;
                    f
                };
                let home = engine.shard_of(&frame(0));
                prop_assert!(home < shards, "{}: shard out of range", name);
                prop_assert_eq!(
                    engine.shard_of(&frame(*extra)), home,
                    "{}: flow {}:{} split at +{}B over {} shards",
                    name, mac, sport, extra, shards
                );
            }
        }
    }

    #[test]
    fn every_policy_is_output_transparent_for_stateless_services(
        seqs in proptest::collection::vec((0u64..40, 8usize..200, 0u8..4), 1..16),
        shards in 1usize..9
    ) {
        // Sharded output == single-instance output for a stateless
        // service (ICMP echo) at arbitrary shard counts, under EVERY
        // dispatch policy — including round-robin, which scatters flows.
        let svc = s::icmp::icmp_echo();
        let frames: Vec<Frame> = seqs.iter().map(|(client, len, port)| {
            let mut f = s::icmp::echo_request_frame(*len, *client as u16);
            let b = f.bytes_mut();
            b[29] = (*client % 200) as u8 + 1;
            emu_types::bitutil::set16(b, 24, 0);
            let c = emu_types::checksum::internet_checksum(&b[14..34]);
            emu_types::bitutil::set16(b, 24, c);
            f.in_port = *port;
            f
        }).collect();

        let mut single = svc.engine(Target::Cpu).build().unwrap();
        let want: Vec<_> = frames.iter().map(|f| single.process(f).unwrap().tx).collect();

        let engines: Vec<(&str, Engine)> = vec![
            ("rss-hash", svc.engine(Target::Cpu).shards(shards).build().unwrap()),
            (
                "round-robin",
                svc.engine(Target::Cpu)
                    .shards(shards)
                    .dispatch(RoundRobin::new())
                    .build()
                    .unwrap(),
            ),
            (
                "nat-steering",
                svc.engine(Target::Cpu)
                    .shards(shards)
                    .dispatch(NatSteering::default())
                    .build()
                    .unwrap(),
            ),
        ];
        for (name, mut engine) in engines {
            let report = engine.process_batch(&frames);
            prop_assert_eq!(report.ok_count(), frames.len(), "{}: frames failed", name);
            for (i, (got, want)) in report.outputs.iter().zip(&want).enumerate() {
                prop_assert_eq!(
                    &got.as_ref().unwrap().tx, want,
                    "{}: frame {} diverged at {} shards", name, i, shards
                );
            }
        }
    }
}

/// The traffic-generator property suite: heavier per case (each case
/// drives full service engines on both targets), so fewer cases.
mod traffic_props {
    use super::*;

    /// The soak services each generator is paired with, as
    /// `(label, service, generator)` for a given seed.
    fn pairings(seed: u64) -> Vec<(&'static str, emu::stdlib::Service, Box<dyn TrafficGen>)> {
        vec![
            (
                "tcp-ping",
                s::tcp_ping(),
                Box::new(TcpConversations::new(seed, 6, &[0, 1, 2, 3])),
            ),
            (
                "memcached",
                s::memcached(),
                Box::new(MemcachedZipf::new(seed, 16, 1.0, 0.8)),
            ),
            (
                "dns",
                s::dns_server(vec![
                    ("example.com".to_string(), "93.184.216.34".parse().unwrap()),
                    ("a.b".to_string(), "1.2.3.4".parse().unwrap()),
                ]),
                Box::new(DnsWeighted::new(
                    seed,
                    &[("example.com", 2), ("a.b", 1), ("x.y", 1)],
                )),
            ),
            (
                "nat",
                s::nat("203.0.113.1".parse().unwrap()),
                Box::new(
                    Mix::new(seed)
                        .add(4, TcpConversations::new(seed ^ 1, 6, &[1, 2]))
                        .add(1, Adversarial::new(seed ^ 2, &[1, 2, 3])),
                ),
            ),
            (
                "switch",
                s::switch_ip_cam(),
                Box::new(
                    Mix::new(seed)
                        .add(3, Background::new(seed ^ 1, &[0, 1, 2, 3]))
                        .add(1, Adversarial::new(seed ^ 2, &[0, 1, 2, 3])),
                ),
            ),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn generator_streams_agree_across_targets(seed in any::<u64>()) {
            // Every generator's stream — including its adversarial
            // slices — produces identical per-frame outcomes on the
            // interpreter (Cpu) and the cycle-accurate RTL (Fpga).
            for (label, svc, mut gen) in pairings(seed) {
                let mut cpu = svc.engine(Target::Cpu).build().unwrap();
                let mut fpga = svc.engine(Target::Fpga).build().unwrap();
                for i in 0..24 {
                    let f = gen.next_frame();
                    match (cpu.process(&f), fpga.process(&f)) {
                        (Ok(a), Ok(b)) => prop_assert_eq!(
                            &a.tx, &b.tx, "{}: frame {} diverged", label, i
                        ),
                        (Err(EngineError::Oversize { .. }), Err(EngineError::Oversize { .. })) => {}
                        (a, b) => prop_assert!(
                            false,
                            "{}: frame {} outcomes diverged: {:?} vs {:?}",
                            label, i, a.map(|o| o.tx), b.map(|o| o.tx)
                        ),
                    }
                }
            }
        }

        #[test]
        fn churn_streams_agree_across_targets_with_ttl_tables(seed in any::<u64>()) {
            // Insert/expire/re-insert churn against small TTL'd tables:
            // the interpreter (Cpu) and the cycle-accurate RTL (Fpga)
            // must make identical aging decisions — a mapping that
            // expires on one target but lingers on the other changes
            // visible outputs (floods vs unicasts, fresh ports vs
            // reused ones) on the very next frame of that flow.
            let cases: Vec<(&str, emu::stdlib::Service, Box<dyn TrafficGen>)> = vec![
                (
                    "nat",
                    s::nat("203.0.113.1".parse().unwrap()),
                    Box::new(FlowChurn::new(seed, 12, 200, &[1, 2, 3])),
                ),
                (
                    "switch",
                    s::switch_ip_cam(),
                    Box::new(MacChurn::new(seed, 8, 250)),
                ),
            ];
            for (label, svc, mut gen) in cases {
                let mut cpu = svc
                    .engine(Target::Cpu)
                    .table_entries(32)
                    .ttl_frames(24)
                    .build()
                    .unwrap();
                let mut fpga = svc
                    .engine(Target::Fpga)
                    .table_entries(32)
                    .ttl_frames(24)
                    .build()
                    .unwrap();
                for i in 0..120 {
                    let f = gen.next_frame();
                    let a = cpu.process(&f).unwrap();
                    let b = fpga.process(&f).unwrap();
                    prop_assert_eq!(
                        &a.tx, &b.tx,
                        "{}: churn frame {} diverged across targets", label, i
                    );
                }
            }
        }

        #[test]
        fn generator_streams_are_shard_invariant_for_stateless_services(
            seed in any::<u64>(),
            shards in 2usize..7
        ) {
            // Stateless services must produce identical outputs whatever
            // the shard count, for whole generated streams (valid and
            // malformed alike).
            let cases: Vec<(&str, emu::stdlib::Service, Box<dyn TrafficGen>)> = vec![
                (
                    "dns",
                    s::dns_server(vec![
                        ("example.com".to_string(), "93.184.216.34".parse().unwrap()),
                    ]),
                    Box::new(
                        Mix::new(seed)
                            .add(3, DnsWeighted::new(seed ^ 1, &[("example.com", 1), ("nope.x", 1)]))
                            .add(1, Adversarial::new(seed ^ 2, &[0, 1, 2, 3])),
                    ),
                ),
                (
                    "icmp",
                    s::icmp_echo(),
                    Box::new(Background::new(seed, &[0, 1, 2, 3])),
                ),
            ];
            for (label, svc, mut gen) in cases {
                let frames: Vec<Frame> = (0..30).map(|_| gen.next_frame()).collect();
                let mut single = svc.engine(Target::Cpu).build().unwrap();
                let mut sharded = svc.engine(Target::Cpu).shards(shards).build().unwrap();
                let want = single.process_batch(&frames);
                let got = sharded.process_batch(&frames);
                for (i, (a, b)) in want.outputs.iter().zip(&got.outputs).enumerate() {
                    match (a, b) {
                        (Ok(a), Ok(b)) => prop_assert_eq!(
                            &a.tx, &b.tx,
                            "{}: frame {} changed under {} shards", label, i, shards
                        ),
                        (Err(EngineError::Oversize { .. }), Err(EngineError::Oversize { .. })) => {}
                        _ => prop_assert!(
                            false,
                            "{}: frame {} outcome changed under {} shards", label, i, shards
                        ),
                    }
                }
            }
        }

        #[test]
        fn adversarial_streams_never_trap_any_engine(
            seed in any::<u64>(),
            shards in 1usize..5
        ) {
            // The engine-wide robustness contract: adversarial frames
            // drop or pass — `EngineError::Trap` is unreachable and no
            // shard is ever poisoned.
            let services: Vec<(&str, emu::stdlib::Service)> = vec![
                ("nat", s::nat("203.0.113.1".parse().unwrap())),
                ("memcached", s::memcached()),
                ("switch", s::switch_ip_cam()),
                ("tcp-ping", s::tcp_ping()),
                ("icmp", s::icmp_echo()),
            ];
            for (label, svc) in services {
                let mut engine = svc.engine(Target::Cpu).shards(shards).build().unwrap();
                let mut gen = Adversarial::new(seed, &[0, 1, 2, 3]);
                let frames: Vec<Frame> = (0..40).map(|_| gen.next_frame()).collect();
                let report = engine.process_batch(&frames);
                for (i, out) in report.outputs.iter().enumerate() {
                    prop_assert!(
                        !matches!(
                            out,
                            Err(EngineError::Trap { .. }) | Err(EngineError::Poisoned { .. })
                        ),
                        "{}: adversarial frame {} trapped: {:?}", label, i, out
                    );
                }
                prop_assert_eq!(
                    engine.healthy_shards(), shards,
                    "{}: a shard was poisoned", label
                );
            }
        }
    }
}
