//! Telemetry determinism across the execution matrix:
//!
//! * sequential and parallel batch execution produce **equal** engine
//!   snapshots (counters and cycle histograms, shard by shard),
//! * the compiled and tree-walk CPU backends produce **equal**
//!   snapshots for the same frames,
//! * drops are attributed to the right outcome counter in every mode,
//! * a snapshot's JSON form survives a print/parse round trip.
//!
//! These are the contracts the `sustained` bench asserts at scale; here
//! they run on every `cargo test` with seeded mixed traffic.

use emu::prelude::*;
use emu::telemetry::{EngineSnapshot, Json};
use emu::traffic::{Background, Mix, TcpConversations, TrafficGen};

fn mixed_frames(seed: u64, n: usize) -> Vec<Frame> {
    let mut mix = Mix::new(seed)
        .add(3, TcpConversations::new(seed ^ 1, 16, &[0, 1, 2, 3]))
        .add(1, Background::new(seed ^ 2, &[0, 1, 2, 3]));
    (0..n).map(|_| mix.next_frame()).collect()
}

fn snapshot(backend: Backend, shards: usize, parallel: bool, frames: &[Frame]) -> EngineSnapshot {
    let svc = emu::services::switch_ip_cam();
    let mut engine = svc
        .engine(Target::Cpu)
        .backend(backend)
        .shards(shards)
        .parallel(parallel)
        .build()
        .unwrap();
    for chunk in frames.chunks(64) {
        engine.process_batch(chunk);
    }
    engine.telemetry().unwrap()
}

#[test]
fn sequential_equals_parallel_snapshots() {
    let frames = mixed_frames(0x7e1e_0001, 512);
    for shards in [1, 2, 4, 8] {
        let seq = snapshot(Backend::Compiled, shards, false, &frames);
        let par = snapshot(Backend::Compiled, shards, true, &frames);
        assert_eq!(seq, par, "shards={shards}: snapshots diverged");
        assert_eq!(seq.shards.len(), shards);
        assert_eq!(seq.total().counters.offered(), frames.len() as u64);
    }
}

#[test]
fn compiled_equals_treewalk_snapshots() {
    let frames = mixed_frames(0x7e1e, 384);
    for shards in [1, 4] {
        let compiled = snapshot(Backend::Compiled, shards, false, &frames);
        let treewalk = snapshot(Backend::TreeWalk, shards, false, &frames);
        assert_eq!(
            compiled, treewalk,
            "shards={shards}: cycle accounting must be backend-independent"
        );
    }
}

#[test]
fn oversize_drops_attributed_identically_in_both_modes() {
    let svc = emu::services::icmp_echo();
    let run = |parallel: bool| {
        let mut engine = svc
            .engine(Target::Cpu)
            .shards(2)
            .parallel(parallel)
            .build()
            .unwrap();
        let cap = engine.frame_capacity();
        let mut frames: Vec<Frame> = (0..16)
            .map(|i| emu::services::icmp::echo_request_frame(32, i))
            .collect();
        frames.push(Frame::new(vec![0; cap + 1]));
        engine.process_batch(&frames);
        engine.telemetry().unwrap()
    };
    let (seq, par) = (run(false), run(true));
    assert_eq!(seq, par);
    let total = seq.total();
    assert_eq!(total.counters.frames, 16);
    assert_eq!(total.counters.drop_oversize, 1);
    assert_eq!(total.counters.drop_trap, 0);
    assert_eq!(total.counters.drop_poisoned, 0);
    assert_eq!(total.cycles.count(), 16, "drops stay out of the histogram");
}

#[test]
fn snapshot_json_round_trips() {
    let frames = mixed_frames(0xabc, 128);
    let snap = snapshot(Backend::Compiled, 2, false, &frames);
    let json = snap.to_json();
    let parsed = Json::parse(&json.pretty()).unwrap();
    assert_eq!(parsed, json);
    let total = parsed.get("total").unwrap();
    assert_eq!(
        total
            .get("counters")
            .and_then(|c| c.get("offered"))
            .and_then(Json::as_u64),
        Some(frames.len() as u64)
    );
}
