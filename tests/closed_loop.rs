//! Closed-loop host behavior over generated topologies.
//!
//! Everything here runs a seeded `emu::hosts` fat-tree — sharded
//! learning-switch engines, the three service leaves, a closed-loop
//! client on every remaining slot — and checks *end-to-end* properties
//! the per-engine suites cannot see:
//!
//! * retransmission actually recovers goodput under link loss,
//! * duplicated links produce suppressed duplicates, never double
//!   completions or checker violations,
//! * measured RTT is monotone in configured link delay and never dips
//!   below the physical floor,
//! * the whole-network telemetry snapshot is byte-identical across
//!   sequential/parallel engine execution and the compiled/tree-walk
//!   CPU backends, and replays byte-identically per seed.

use emu::hosts::{fat_tree, ClientConfig, TopoSpec};
use emu::prelude::*;
use emu::simnet::Impairments;
use emu::traffic::ClientCheck;

/// A small tree (core + 1 agg + 2 edges: 4 switches, 3 services,
/// 3 clients) with a short RTO so retry tails stay cheap in debug
/// builds.
fn small_spec() -> TopoSpec {
    TopoSpec {
        aggs: 1,
        edges_per_agg: 2,
        client: ClientConfig {
            requests: 50,
            rto_ns: 200_000.0, // 200 µs; clean RTT is ~13 µs
            retries: 4,
            gap_ns: 0.0,
        },
        ..TopoSpec::default()
    }
}

/// Runs a spec to quiescence and returns `(summary, checker)`.
fn run(spec: TopoSpec) -> (emu::hosts::TopoSummary, ClientCheck) {
    let mut topo = fat_tree(spec).expect("engines build");
    topo.start();
    topo.run().expect("run to quiescence");
    let mut check = ClientCheck::new(spec.client.retries).rtt_floor_ns(topo.rtt_floor_ns());
    let sum = topo.harvest(&mut check);
    assert_eq!(
        check.violations(),
        0,
        "end-to-end violations: {:?}",
        check.notes()
    );
    assert_eq!(sum.issued, check.frames(), "every request must resolve");
    (sum, check)
}

#[test]
fn retries_recover_goodput_under_loss() {
    // 8% loss on *every* link; a request crosses up to four links each
    // way, so a single attempt fails a lot. The same seed with and
    // without a retry budget isolates what retransmission buys.
    let lossy = Impairments {
        loss: 0.08,
        seed: 0x10_55,
        ..Impairments::default()
    };
    let mut spec = small_spec();
    spec.impair = Some(lossy);

    let (with_retries, _) = run(spec);

    spec.client.retries = 0;
    let (without, _) = run(spec);

    assert!(
        with_retries.completed > without.completed,
        "retries must recover goodput: {} completed with retries vs {} without",
        with_retries.completed,
        without.completed
    );
    assert!(
        with_retries.retransmits > 0,
        "loss must actually trigger retransmission"
    );
    assert!(
        without.timeouts > 0,
        "8% per-link loss with no retries must time some requests out"
    );
    // The retry budget is generous enough that nearly everything lands.
    assert!(
        with_retries.completed * 10 >= with_retries.issued * 9,
        "retries should complete >=90%: {}/{}",
        with_retries.completed,
        with_retries.issued
    );
}

#[test]
fn duplicated_links_are_suppressed_not_double_counted() {
    let mut spec = small_spec();
    spec.impair = Some(Impairments {
        duplicate: 0.15,
        seed: 0xd0_b1e,
        ..Impairments::default()
    });
    let (sum, _) = run(spec);
    assert!(
        sum.duplicates > 0,
        "15% per-link duplication must surface duplicate responses"
    );
    // No loss: every request completes exactly once, no timeouts, and
    // the checker (via `run`) saw exactly `issued` outcomes.
    assert_eq!(sum.completed, sum.issued);
    assert_eq!(sum.timeouts, 0);
    assert_eq!(sum.mismatches, 0);
}

#[test]
fn rtt_is_monotone_in_link_delay_and_respects_the_floor() {
    let mut p50s = Vec::new();
    for delay_ns in [500.0, 2_000.0, 8_000.0] {
        let mut spec = small_spec();
        spec.link_delay_ns = delay_ns;
        let floor = (4.0 * delay_ns) as u64;
        let (sum, _) = run(spec);
        let p50 = sum.rtt.quantile(0.50).expect("clean RTT samples");
        assert!(
            p50 >= floor,
            "p50 {p50} ns below the 4x{delay_ns} ns physical floor"
        );
        p50s.push(p50);
    }
    assert!(
        p50s.windows(2).all(|w| w[0] < w[1]),
        "median RTT must grow with link delay: {p50s:?}"
    );
}

#[test]
fn topology_telemetry_is_identical_across_backends_modes_and_replays() {
    // The full default tree (7 switches + 3 services, 9 clients), run
    // under all four execution configurations plus a replay. Engine
    // cycle accounting is backend- and mode-independent, timer and
    // impairment draws are seed-derived, and client stats fold only
    // sim-time quantities — so the *entire* network snapshot, final
    // sim clock included, must come out byte-identical.
    let mut spec = TopoSpec {
        client: ClientConfig {
            requests: 30,
            ..ClientConfig::default()
        },
        impair: Some(Impairments {
            loss: 0.03,
            duplicate: 0.02,
            seed: 0x5eed,
            ..Impairments::default()
        }),
        ..TopoSpec::default()
    };

    let mut snaps = Vec::new();
    for (parallel, backend, label) in [
        (false, Backend::Compiled, "seq/compiled"),
        (true, Backend::Compiled, "par/compiled"),
        (false, Backend::TreeWalk, "seq/treewalk"),
        (true, Backend::TreeWalk, "par/treewalk"),
        (true, Backend::Compiled, "par/compiled replay"),
    ] {
        spec.parallel = parallel;
        spec.backend = backend;
        let mut topo = fat_tree(spec).expect("engines build");
        topo.start();
        topo.run().expect("run to quiescence");
        let mut check = ClientCheck::new(spec.client.retries);
        let sum = topo.harvest(&mut check);
        assert_eq!(check.violations(), 0, "{label}: {:?}", check.notes());
        assert!(sum.completed > 0, "{label}: nothing completed");
        snaps.push((label, topo.net.telemetry().pretty()));
    }
    let (ref_label, reference) = &snaps[0];
    for (label, snap) in &snaps[1..] {
        assert_eq!(
            snap, reference,
            "telemetry diverged between {ref_label} and {label}"
        );
    }
}
