//! Artefact checks over every service: compiles, emits lintable Verilog,
//! has sane resource accounting, and traces to VCD.

use emu::prelude::*;
use emu::services as s;

fn all_services() -> Vec<(&'static str, emu::stdlib::Service)> {
    vec![
        ("switch-cam", s::switch::switch_ip_cam()),
        ("switch-behavioural", s::switch::switch_behavioural(16)),
        (
            "filter",
            s::filter::filter_switch_from_lines(
                &["-A FORWARD -p tcp --dport 80 -j DROP"],
                s::filter::FilterAction::Accept,
            )
            .unwrap(),
        ),
        ("icmp", s::icmp::icmp_echo()),
        ("tcp-ping", s::tcp_ping::tcp_ping()),
        (
            "dns",
            s::dns::dns_server(vec![("a.b".into(), "1.2.3.4".parse().unwrap())]),
        ),
        ("memcached", s::memcached::memcached()),
        ("nat", s::nat::nat("203.0.113.1".parse().unwrap())),
        ("cache", s::cache::lru_cache()),
    ]
}

#[test]
fn every_service_compiles_and_emits_valid_verilog() {
    for (name, svc) in all_services() {
        let fsm = compile(&svc.program).unwrap_or_else(|e| panic!("{name}: {e}"));
        let v = emit(&fsm).unwrap_or_else(|e| panic!("{name}: {e}"));
        kiwi::lint(&v).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(v.lines().count() > 50, "{name}: suspiciously small Verilog");
        assert!(v.contains("module"), "{name}");
    }
}

#[test]
fn resource_reports_are_sane_and_ordered() {
    let mut logic = Vec::new();
    for (name, svc) in all_services() {
        let fsm = compile(&svc.program).unwrap();
        let rep = estimate(&fsm, &[]);
        assert!(rep.logic > 0, "{name}: zero logic");
        assert!(rep.ffs > 0, "{name}: zero FFs");
        logic.push((name, rep.logic));
    }
    // The paper: no use case exhausts the FPGA; < 33% of a Virtex-7 690T
    // (~433k LUTs), i.e. < ~143k logic units even with generous margins.
    for (name, l) in &logic {
        assert!(*l < 143_000, "{name}: {l} exceeds the paper's ceiling");
    }
    // Memcached (parsers + responses) must out-cost the icmp echo core.
    let get = |n: &str| logic.iter().find(|(m, _)| *m == n).unwrap().1;
    assert!(get("memcached") > get("icmp"));
}

#[test]
fn vcd_traces_capture_service_activity() {
    let svc = s::icmp::icmp_echo();
    let prog = svc.program.clone();
    let flat = kiwi_ir::flatten(&prog).unwrap();
    let mut m = kiwi_ir::Machine::new(flat);
    let mut vcd = emu::rtl::VcdTrace::new(&prog, 5.0);
    let mut env = kiwi_ir::NullEnv;
    for cycle in 0..50 {
        m.step_cycle(&mut env, &mut kiwi_ir::NullObserver).unwrap();
        let p = m.program().clone();
        vcd.sample(cycle, &p, m.state());
    }
    let text = vcd.finish();
    assert!(text.contains("$enddefinitions"));
    assert!(text.contains("csum_acc"));
}

#[test]
fn state_occupancy_profile_identifies_wait_state() {
    use kiwi_ir::interp::{NullEnv, NullObserver};
    // An idle service spends ~all cycles in its rx-wait state — the
    // profiler (Emu's "where does time go" tooling) must show that.
    let svc = s::icmp::icmp_echo();
    let fsm = compile(&svc.program).unwrap();
    let mut rtl = emu::rtl::RtlMachine::new(fsm);
    rtl.run_cycles(500, &mut NullEnv, &mut NullObserver)
        .unwrap();
    let occ = rtl.occupancy();
    let max = occ.values().max().copied().unwrap_or(0);
    assert!(max > 450, "idle core must sit in one state, max={max}");
    assert!(rtl.occupancy_report().contains("%"));
}

#[test]
fn verilog_grows_with_service_complexity() {
    let small = emit(&compile(&s::icmp::icmp_echo().program).unwrap()).unwrap();
    let big = emit(&compile(&s::memcached::memcached().program).unwrap()).unwrap();
    assert!(
        big.lines().count() > small.lines().count(),
        "memcached ({}) vs icmp ({})",
        big.lines().count(),
        small.lines().count()
    );
}
