//! The heterogeneous-target claim (§1 contribution 2, §4.4): one service
//! program, three executions — CPU interpreter, Mininet-analogue network
//! simulation, cycle-accurate FPGA — with identical functional behaviour.

use emu::prelude::*;
use emu::services::nat::{nat, udp_frame, FIRST_EPHEMERAL};
use emu::simnet::NetSim;

#[test]
fn nat_is_identical_on_all_three_targets() {
    let public: Ipv4 = "203.0.113.1".parse().unwrap();
    let outbound = udp_frame(
        "192.168.1.50".parse().unwrap(),
        3333,
        "8.8.8.8".parse().unwrap(),
        53,
        2,
    );

    // CPU and FPGA.
    let mut frames = Vec::new();
    for target in [Target::Cpu, Target::Fpga] {
        let svc = nat(public);
        let mut inst = svc.engine(target).build().unwrap();
        let out = inst.process(&outbound).unwrap();
        frames.push(out.tx[0].frame.clone());
    }

    // Mininet-analogue.
    let mut net = NetSim::new();
    let svc = nat(public);
    let nat_node = net.add_service("nat", svc.engine(Target::Cpu).build().unwrap(), 4);
    let h_int = net.add_host("h_int", 1);
    let h_ext = net.add_host("h_ext", 1);
    net.link(h_int, 0, nat_node, 2, 1_000.0, 10.0);
    net.link(h_ext, 0, nat_node, 0, 5_000.0, 10.0);
    net.send(h_int, 0, outbound, 0.0);
    net.run_until(1e9).unwrap();
    frames.push(net.inbox(h_ext)[0].frame.clone());

    assert_eq!(frames[0].bytes(), frames[1].bytes(), "cpu vs fpga");
    assert_eq!(frames[0].bytes(), frames[2].bytes(), "cpu vs netsim");
}

#[test]
fn nat_return_path_across_simulated_network() {
    let public: Ipv4 = "203.0.113.1".parse().unwrap();
    let mut net = NetSim::new();
    let svc = nat(public);
    let nat_node = net.add_service("nat", svc.engine(Target::Cpu).build().unwrap(), 4);
    let h_int = net.add_host("h_int", 1);
    let h_ext = net.add_host("h_ext", 1);
    net.link(h_int, 0, nat_node, 2, 1_000.0, 10.0);
    net.link(h_ext, 0, nat_node, 0, 5_000.0, 10.0);

    let out = udp_frame(
        "192.168.1.50".parse().unwrap(),
        3333,
        "8.8.8.8".parse().unwrap(),
        53,
        2,
    );
    net.send(h_int, 0, out, 0.0);
    net.run_until(1e9).unwrap();
    assert_eq!(net.inbox(h_ext).len(), 1, "outbound must reach the remote");

    let reply = udp_frame("8.8.8.8".parse().unwrap(), 53, public, FIRST_EPHEMERAL, 0);
    net.send(h_ext, 0, reply, 1e6);
    net.run_until(2e9).unwrap();
    let back = net.inbox(h_int);
    assert_eq!(back.len(), 1, "reply must be translated back inside");
    assert_eq!(&back[0].frame.bytes()[30..34], &[192, 168, 1, 50]);
    assert_eq!(emu_types::bitutil::get16(back[0].frame.bytes(), 36), 3333);
}

#[test]
fn every_service_agrees_across_cpu_and_fpga() {
    use emu::services as s;
    use emu::stdlib::assert_targets_agree;

    let zone = vec![("a.b".to_string(), "1.2.3.4".parse().unwrap())];

    // One representative workload per service.
    assert_targets_agree(
        &s::icmp::icmp_echo(),
        &[
            s::icmp::echo_request_frame(56, 1),
            s::icmp::echo_request_frame(8, 2),
        ],
    )
    .unwrap();
    assert_targets_agree(
        &s::tcp_ping::tcp_ping(),
        &[s::tcp_ping::syn_frame(1000, 80, 42)],
    )
    .unwrap();
    assert_targets_agree(
        &s::dns::dns_server(zone),
        &[s::dns::query_frame("a.b", 1), s::dns::query_frame("x.y", 2)],
    )
    .unwrap();
    assert_targets_agree(
        &s::memcached::memcached(),
        &[
            s::memcached::request_frame("set q 0 0 8\r\nAAAABBBB\r\n", 1),
            s::memcached::request_frame("get q\r\n", 2),
        ],
    )
    .unwrap();
}
