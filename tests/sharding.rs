//! Integration suite for the unified sharded engine:
//!
//! * sharded output equals single-instance output for stateless services
//!   under any shard count,
//! * flow affinity — every frame of one 5-tuple lands on one shard — so
//!   stateful services (NAT) keep per-flow state consistent,
//! * `process_batch` is exactly equivalent to frame-by-frame `process`,
//!   on both execution targets and in both execution modes,
//! * `NatSteering` dispatch delivers inbound NAT replies to the shard
//!   that allocated the mapping — which plain RSS provably cannot.

use emu::prelude::*;
use emu::services as s;
use emu::stdlib::flow_hash;
use emu_types::bitutil;

/// Builds a UDP frame for client flow `flow` (distinct sport + src IP)
/// with `extra` payload bytes, so the same flow can send varied frames.
fn client_frame(flow: u16, extra: usize) -> Frame {
    let mut f = s::nat::udp_frame(
        emu_types::Ipv4::new(192, 168, 1, 50),
        2000 + flow,
        "8.8.8.8".parse().unwrap(),
        53,
        1 + (flow % 3) as u8,
    );
    let mut bytes = f.bytes().to_vec();
    bytes.extend(std::iter::repeat_n(0xa5, extra));
    let mut g = Frame::new(bytes);
    g.in_port = f.in_port;
    f = g;
    f
}

#[test]
fn stateless_services_shard_transparently() {
    // ICMP echo and DNS hold no cross-frame state: sharded output must be
    // byte-identical to a single instance under every shard count.
    let zone = vec![
        ("a.b".to_string(), "1.2.3.4".parse().unwrap()),
        ("example.com".to_string(), "93.184.216.34".parse().unwrap()),
    ];
    let cases: Vec<(&str, emu::stdlib::Service, Vec<Frame>)> = vec![
        (
            "icmp",
            s::icmp::icmp_echo(),
            (0..24u64)
                .map(|i| {
                    let mut f = s::icmp::echo_request_frame(16 + (i as usize % 48), i as u16);
                    // Vary the client address so flows spread.
                    let b = f.bytes_mut();
                    b[29] = (i % 9) as u8 + 1;
                    bitutil::set16(b, 24, 0);
                    let c = emu_types::checksum::internet_checksum(&b[14..34]);
                    bitutil::set16(b, 24, c);
                    f.in_port = (i % 4) as u8;
                    f
                })
                .collect(),
        ),
        (
            "dns",
            s::dns::dns_server(zone),
            (0..24u64)
                .map(|i| {
                    let name = if i % 3 == 0 { "a.b" } else { "example.com" };
                    let mut f = s::dns::query_frame(name, i as u16);
                    bitutil::set16(f.bytes_mut(), 34, 4000 + (i % 11) as u16);
                    f.in_port = (i % 4) as u8;
                    f
                })
                .collect(),
        ),
    ];

    for (name, svc, frames) in cases {
        for target in [Target::Cpu, Target::Fpga] {
            let mut single = svc.engine(target).build().unwrap();
            for shards in [1usize, 2, 3, 4, 8] {
                let mut engine = svc.engine(target).shards(shards).build().unwrap();
                for f in &frames {
                    let want = single.process(f).unwrap();
                    let got = engine.process(f).unwrap();
                    assert_eq!(got.tx, want.tx, "{name}: {shards} shards, {target:?}");
                }
            }
        }
    }
}

#[test]
fn flow_affinity_all_frames_of_a_tuple_share_a_shard() {
    let svc = s::nat::nat("203.0.113.1".parse().unwrap());
    for shards in [2usize, 3, 4, 8] {
        let engine = svc.engine(Target::Cpu).shards(shards).build().unwrap();
        for flow in 0..64u16 {
            // Same 5-tuple, different lengths/payloads: one home shard.
            let home = engine.shard_of(&client_frame(flow, 0));
            for extra in [1usize, 7, 64, 403] {
                assert_eq!(
                    engine.shard_of(&client_frame(flow, extra)),
                    home,
                    "flow {flow} split across shards at +{extra}B"
                );
            }
        }
        // And the hash actually uses more than one shard over the pool.
        let used: std::collections::HashSet<usize> = (0..64u16)
            .map(|flow| engine.shard_of(&client_frame(flow, 0)))
            .collect();
        assert!(used.len() > 1, "{shards} shards: dispatch degenerated");
    }
}

#[test]
fn sharded_nat_keeps_per_flow_mappings_consistent() {
    // Stateful correctness under sharding: each flow's allocated external
    // port must be stable across repeated frames (state lives on exactly
    // one shard), and translated frames must carry valid checksums.
    let svc = s::nat::nat("203.0.113.1".parse().unwrap());
    let mut engine = svc.engine(Target::Fpga).shards(4).build().unwrap();
    let mut first_port = std::collections::HashMap::new();
    for round in 0..3usize {
        for flow in 0..16u16 {
            let out = engine.process(&client_frame(flow, round)).unwrap();
            assert_eq!(out.tx.len(), 1, "flow {flow} round {round}");
            let b = out.tx[0].frame.bytes();
            let ext = bitutil::get16(b, 34);
            let prev = *first_port.entry(flow).or_insert(ext);
            assert_eq!(prev, ext, "flow {flow} changed external port");
            assert!(emu_types::checksum::verify(&b[14..34]), "bad IP csum");
            assert!(s::nat::udp_checksum_valid(b), "bad UDP csum");
        }
    }
}

/// Builds the inbound reply to a translated outbound frame: from the
/// remote back to the public address at the allocated external port.
fn reply_to(translated: &Frame) -> Frame {
    let b = translated.bytes();
    let public = emu_types::Ipv4::new(b[26], b[27], b[28], b[29]);
    let ext_port = bitutil::get16(b, 34);
    s::nat::udp_frame("8.8.8.8".parse().unwrap(), 53, public, ext_port, 0)
}

#[test]
fn nat_steering_delivers_inbound_replies_to_the_owning_shard() {
    // The ROADMAP inbound-steering item, end-to-end: under `NatSteering`
    // every reply reaches the shard holding the reverse mapping and is
    // translated back; under plain RSS the reply 5-tuple hashes
    // independently of the owner, so (with 16 flows over 4 shards) some
    // replies land on the wrong shard and are dropped. Swapping the
    // NatSteering engine's dispatch for RssHash makes this test fail.
    let svc = s::nat::nat("203.0.113.1".parse().unwrap());
    let flows: Vec<u16> = (0..16).collect();

    // Returns how many replies came back *correctly* (translated to this
    // flow's internal port) vs wrong (dropped on a shard with no mapping,
    // or — worse — mistranslated to another client via a duplicate
    // mapping, since under RSS every shard allocates from the same
    // range).
    let run = |engine: &mut Engine| -> (usize, usize) {
        let mut correct = 0;
        let mut wrong = 0;
        for &flow in &flows {
            let out = engine.process(&client_frame(flow, 0)).unwrap();
            assert_eq!(out.tx.len(), 1, "outbound must translate");
            let reply = reply_to(&out.tx[0].frame);
            let back = engine.process(&reply).unwrap();
            let ok = back.tx.len() == 1 && {
                let b = back.tx[0].frame.bytes();
                b[30..34] == [192, 168, 1, 50] && bitutil::get16(b, 36) == 2000 + flow
            };
            if ok {
                correct += 1;
            } else {
                wrong += 1;
            }
        }
        (correct, wrong)
    };

    let mut steered = svc
        .engine(Target::Fpga)
        .shards(4)
        .dispatch(NatSteering::default())
        .build()
        .unwrap();
    let (correct, wrong) = run(&mut steered);
    assert_eq!(
        (correct, wrong),
        (flows.len(), 0),
        "NatSteering must deliver every reply to its owning shard"
    );

    let mut rss = svc.engine(Target::Fpga).shards(4).build().unwrap();
    let (_, rss_wrong) = run(&mut rss);
    assert!(
        rss_wrong > 0,
        "plain RSS mis-steers some replies (else this suite lost its teeth)"
    );
}

#[test]
fn nat_steering_partitions_the_ephemeral_range() {
    // Shard k allocates first_ephemeral + k, stepping by N: external
    // ports are globally unique across shards and their residue names
    // the owner.
    let svc = s::nat::nat("203.0.113.1".parse().unwrap());
    let shards = 4usize;
    let mut engine = svc
        .engine(Target::Cpu)
        .shards(shards)
        .dispatch(NatSteering::default())
        .build()
        .unwrap();
    let mut seen = std::collections::HashMap::new();
    for flow in 0..32u16 {
        let f = client_frame(flow, 0);
        let home = engine.shard_of(&f);
        let out = engine.process(&f).unwrap();
        let ext = bitutil::get16(out.tx[0].frame.bytes(), 34);
        assert_eq!(
            usize::from(ext - s::nat::FIRST_EPHEMERAL) % shards,
            home,
            "flow {flow}: port {ext} outside shard {home}'s residue class"
        );
        assert!(
            seen.insert(ext, flow).is_none(),
            "external port {ext} allocated twice"
        );
    }
}

#[test]
fn process_batch_equals_frame_by_frame() {
    // Both on a 1-shard engine and a 4-shard engine, batching must be
    // invisible to results — including for a stateful service fed affine
    // traffic.
    let svc = s::nat::nat("203.0.113.1".parse().unwrap());
    let frames: Vec<Frame> = (0..40u64)
        .map(|i| client_frame((i % 10) as u16, (i / 10) as usize))
        .collect();

    // Single pipeline: batch vs loop.
    let mut a = svc.engine(Target::Fpga).build().unwrap();
    let mut b = svc.engine(Target::Fpga).build().unwrap();
    let batch = a.process_batch(&frames);
    for (f, got) in frames.iter().zip(&batch.outputs) {
        assert_eq!(got.as_ref().unwrap(), &b.process(f).unwrap());
    }
    assert_eq!(batch.outputs.len(), frames.len());
    assert_eq!(batch.tx_count(), frames.len());

    // Sharded engine: batch vs one-at-a-time on a fresh engine.
    let mut eng_batch = svc.engine(Target::Fpga).shards(4).build().unwrap();
    let mut eng_loop = svc.engine(Target::Fpga).shards(4).build().unwrap();
    let sharded = eng_batch.process_batch(&frames);
    assert_eq!(sharded.ok_count(), frames.len());
    for (f, got) in frames.iter().zip(&sharded.outputs) {
        let want = eng_loop.process(f).unwrap();
        assert_eq!(got.as_ref().unwrap(), &want);
    }
    // Busy cycles land only on shards that saw frames.
    let busy = sharded.total_cycles();
    assert!(busy > 0 && sharded.wall_cycles() <= busy);
}

#[test]
fn parallel_execution_is_invisible_to_results() {
    // `.parallel(true)` moves shard slices onto real threads; outputs,
    // cycle accounting, and mapping stability must match the sequential
    // cost-model mode exactly.
    let svc = s::nat::nat("203.0.113.1".parse().unwrap());
    let frames: Vec<Frame> = (0..48u64)
        .map(|i| client_frame((i % 12) as u16, (i / 12) as usize))
        .collect();
    let mut seq = svc.engine(Target::Fpga).shards(4).build().unwrap();
    let mut par = svc
        .engine(Target::Fpga)
        .shards(4)
        .parallel(true)
        .build()
        .unwrap();
    let a = seq.process_batch(&frames);
    let b = par.process_batch(&frames);
    assert_eq!(a.shard_cycles, b.shard_cycles);
    assert_eq!(a.ok_count(), b.ok_count());
    for (i, (x, y)) in a.outputs.iter().zip(&b.outputs).enumerate() {
        assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap(), "frame {i}");
    }
}

#[test]
fn interpreter_and_fsm_agree_under_sharding() {
    // The engine is target-transparent: CPU shards and FPGA shards give
    // identical transmissions for the same affine traffic.
    let svc = s::nat::nat("203.0.113.1".parse().unwrap());
    let frames: Vec<Frame> = (0..24u64)
        .map(|i| client_frame((i % 8) as u16, 0))
        .collect();
    let mut cpu = svc.engine(Target::Cpu).shards(4).build().unwrap();
    let mut fpga = svc.engine(Target::Fpga).shards(4).build().unwrap();
    for f in &frames {
        assert_eq!(
            cpu.process(f).unwrap().tx,
            fpga.process(f).unwrap().tx,
            "targets diverged under sharding"
        );
    }
}

#[test]
fn shard_of_is_stable_and_engine_reports_shape() {
    let svc = s::icmp::icmp_echo();
    let engine: Engine = svc.engine(Target::Cpu).shards(5).build().unwrap();
    assert_eq!(engine.num_shards(), 5);
    assert_eq!(engine.healthy_shards(), 5);
    assert_eq!(engine.dispatch_name(), "rss-hash");
    assert!(!engine.is_parallel());
    let f = s::icmp::echo_request_frame(56, 1);
    assert_eq!(engine.shard_of(&f), (flow_hash(&f) % 5) as usize);
}
