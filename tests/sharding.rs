//! Integration suite for the sharded multi-pipeline engine:
//!
//! * sharded output equals single-instance output for stateless services
//!   under any shard count,
//! * flow affinity — every frame of one 5-tuple lands on one shard — so
//!   stateful services (NAT) keep per-flow state consistent,
//! * `process_batch` is exactly equivalent to frame-by-frame `process`,
//!   on both execution targets.

use emu::prelude::*;
use emu::services as s;
use emu::stdlib::{flow_hash, ShardedEngine};
use emu_types::bitutil;

/// Builds a UDP frame for client flow `flow` (distinct sport + src IP)
/// with `extra` payload bytes, so the same flow can send varied frames.
fn client_frame(flow: u16, extra: usize) -> Frame {
    let mut f = s::nat::udp_frame(
        emu_types::Ipv4::new(192, 168, 1, 50),
        2000 + flow,
        "8.8.8.8".parse().unwrap(),
        53,
        1 + (flow % 3) as u8,
    );
    let mut bytes = f.bytes().to_vec();
    bytes.extend(std::iter::repeat_n(0xa5, extra));
    let mut g = Frame::new(bytes);
    g.in_port = f.in_port;
    f = g;
    f
}

#[test]
fn stateless_services_shard_transparently() {
    // ICMP echo and DNS hold no cross-frame state: sharded output must be
    // byte-identical to a single instance under every shard count.
    let zone = vec![
        ("a.b".to_string(), "1.2.3.4".parse().unwrap()),
        ("example.com".to_string(), "93.184.216.34".parse().unwrap()),
    ];
    let cases: Vec<(&str, emu::stdlib::Service, Vec<Frame>)> = vec![
        (
            "icmp",
            s::icmp::icmp_echo(),
            (0..24u64)
                .map(|i| {
                    let mut f = s::icmp::echo_request_frame(16 + (i as usize % 48), i as u16);
                    // Vary the client address so flows spread.
                    let b = f.bytes_mut();
                    b[29] = (i % 9) as u8 + 1;
                    bitutil::set16(b, 24, 0);
                    let c = emu_types::checksum::internet_checksum(&b[14..34]);
                    bitutil::set16(b, 24, c);
                    f.in_port = (i % 4) as u8;
                    f
                })
                .collect(),
        ),
        (
            "dns",
            s::dns::dns_server(zone),
            (0..24u64)
                .map(|i| {
                    let name = if i % 3 == 0 { "a.b" } else { "example.com" };
                    let mut f = s::dns::query_frame(name, i as u16);
                    bitutil::set16(f.bytes_mut(), 34, 4000 + (i % 11) as u16);
                    f.in_port = (i % 4) as u8;
                    f
                })
                .collect(),
        ),
    ];

    for (name, svc, frames) in cases {
        for target in [Target::Cpu, Target::Fpga] {
            let mut single = svc.instantiate(target).unwrap();
            for shards in [1usize, 2, 3, 4, 8] {
                let mut engine = svc.instantiate_sharded(target, shards).unwrap();
                for f in &frames {
                    let want = single.process(f).unwrap();
                    let got = engine.process(f).unwrap();
                    assert_eq!(got.tx, want.tx, "{name}: {shards} shards, {target:?}");
                }
            }
        }
    }
}

#[test]
fn flow_affinity_all_frames_of_a_tuple_share_a_shard() {
    let svc = s::nat::nat("203.0.113.1".parse().unwrap());
    for shards in [2usize, 3, 4, 8] {
        let engine = svc.instantiate_sharded(Target::Cpu, shards).unwrap();
        for flow in 0..64u16 {
            // Same 5-tuple, different lengths/payloads: one home shard.
            let home = engine.shard_of(&client_frame(flow, 0));
            for extra in [1usize, 7, 64, 403] {
                assert_eq!(
                    engine.shard_of(&client_frame(flow, extra)),
                    home,
                    "flow {flow} split across shards at +{extra}B"
                );
            }
        }
        // And the hash actually uses more than one shard over the pool.
        let used: std::collections::HashSet<usize> = (0..64u16)
            .map(|flow| engine.shard_of(&client_frame(flow, 0)))
            .collect();
        assert!(used.len() > 1, "{shards} shards: dispatch degenerated");
    }
}

#[test]
fn sharded_nat_keeps_per_flow_mappings_consistent() {
    // Stateful correctness under sharding: each flow's allocated external
    // port must be stable across repeated frames (state lives on exactly
    // one shard), and translated frames must carry valid checksums.
    let svc = s::nat::nat("203.0.113.1".parse().unwrap());
    let mut engine = svc.instantiate_sharded(Target::Fpga, 4).unwrap();
    let mut first_port = std::collections::HashMap::new();
    for round in 0..3usize {
        for flow in 0..16u16 {
            let out = engine.process(&client_frame(flow, round)).unwrap();
            assert_eq!(out.tx.len(), 1, "flow {flow} round {round}");
            let b = out.tx[0].frame.bytes();
            let ext = bitutil::get16(b, 34);
            let prev = *first_port.entry(flow).or_insert(ext);
            assert_eq!(prev, ext, "flow {flow} changed external port");
            assert!(emu_types::checksum::verify(&b[14..34]), "bad IP csum");
            assert!(s::nat::udp_checksum_valid(b), "bad UDP csum");
        }
    }
}

#[test]
fn process_batch_equals_frame_by_frame() {
    // Both on a single instance and through the sharded engine, batching
    // must be invisible to results — including for a stateful service fed
    // affine traffic.
    let svc = s::nat::nat("203.0.113.1".parse().unwrap());
    let frames: Vec<Frame> = (0..40u64)
        .map(|i| client_frame((i % 10) as u16, (i / 10) as usize))
        .collect();

    // Single instance: batch vs loop.
    let mut a = svc.instantiate(Target::Fpga).unwrap();
    let mut b = svc.instantiate(Target::Fpga).unwrap();
    let batch = a.process_batch(&frames).unwrap();
    for (f, got) in frames.iter().zip(&batch.outputs) {
        assert_eq!(got, &b.process(f).unwrap());
    }
    assert_eq!(batch.outputs.len(), frames.len());
    assert_eq!(batch.tx_count(), frames.len());

    // Sharded engine: batch vs one-at-a-time on a fresh engine.
    let mut eng_batch = svc.instantiate_sharded(Target::Fpga, 4).unwrap();
    let mut eng_loop = svc.instantiate_sharded(Target::Fpga, 4).unwrap();
    let sharded = eng_batch.process_batch(&frames);
    assert_eq!(sharded.ok_count(), frames.len());
    for (f, got) in frames.iter().zip(&sharded.outputs) {
        let want = eng_loop.process(f).unwrap();
        assert_eq!(got.as_ref().unwrap(), &want);
    }
    // Busy cycles land only on shards that saw frames.
    let busy: u64 = sharded.shard_cycles.iter().sum();
    assert!(busy > 0 && sharded.wall_cycles() <= busy);
}

#[test]
fn interpreter_and_fsm_agree_under_sharding() {
    // The engine is target-transparent: CPU shards and FPGA shards give
    // identical transmissions for the same affine traffic.
    let svc = s::nat::nat("203.0.113.1".parse().unwrap());
    let frames: Vec<Frame> = (0..24u64)
        .map(|i| client_frame((i % 8) as u16, 0))
        .collect();
    let mut cpu = svc.instantiate_sharded(Target::Cpu, 4).unwrap();
    let mut fpga = svc.instantiate_sharded(Target::Fpga, 4).unwrap();
    for f in &frames {
        assert_eq!(
            cpu.process(f).unwrap().tx,
            fpga.process(f).unwrap().tx,
            "targets diverged under sharding"
        );
    }
}

#[test]
fn shard_of_is_stable_and_engine_reports_shape() {
    let svc = s::icmp::icmp_echo();
    let engine: ShardedEngine = svc.instantiate_sharded(Target::Cpu, 5).unwrap();
    assert_eq!(engine.num_shards(), 5);
    assert_eq!(engine.healthy_shards(), 5);
    let f = s::icmp::echo_request_frame(56, 1);
    assert_eq!(engine.shard_of(&f), (flow_hash(&f) % 5) as usize);
}
