//! Cross-backend equivalence for the CPU execution backends.
//!
//! Random IR programs generated over `kiwi_ir::dsl` must behave
//! identically under all three executions of the same `Program`:
//!
//! * the tree-walking interpreter (`kiwi_ir::Machine`, the reference),
//! * the compiled micro-op backend (`kiwi_ir::CompiledMachine`, the
//!   production CPU path), and
//! * the FSM/RTL executor (`emu::rtl::RtlMachine`, the hardware target),
//!
//! comparing full [`MachineState`] snapshots — registers, arrays, output
//! signals, and the `arr_high` high-water marks platform drivers rely
//! on — plus the complete [`Observer`] trace (assignments with old/new
//! values, labels, extension points, in order).
//!
//! The soak-level leg drives whole `emu-traffic` mixes through
//! `Engine`s built on [`Backend::Compiled`] and [`Backend::TreeWalk`]
//! and asserts the resulting [`BatchReport`]s agree outcome-for-outcome
//! (including error variants and per-shard cycle accounting) for all
//! five soak services.

use emu::prelude::*;
use emu::services as s;
use emu_traffic::{
    Adversarial, Background, DnsWeighted, FlowChurn, MacChurn, MemcachedZipf, Mix,
    TcpConversations, TrafficGen,
};
use emu_types::Bits;
use kiwi_ir::dsl::*;
// `dsl::sig` would be shadowed by `sig: &Sig` parameters below.
use kiwi_ir::dsl::sig as dsl_sig;
use kiwi_ir::interp::{Env, Machine, MachineState, NullEnv, Observer};
use kiwi_ir::program::{ArrId, ArrayBacking, Program, SigId, VarId};
use kiwi_ir::{flatten, CompiledMachine, Expr, Stmt};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Random program generation over the builder DSL.
// ---------------------------------------------------------------------

/// Deterministic entropy source: a finite byte tape, consumed cyclically
/// so any prefix proptest shrinks to is still a valid program seed.
struct Tape {
    bytes: Vec<u8>,
    i: usize,
}

impl Tape {
    fn new(bytes: &[u8]) -> Self {
        let bytes = if bytes.is_empty() {
            vec![0]
        } else {
            bytes.to_vec()
        };
        Tape { bytes, i: 0 }
    }

    fn next(&mut self) -> u8 {
        let b = self.bytes[self.i % self.bytes.len()];
        self.i += 1;
        b
    }

    fn pick(&mut self, n: usize) -> usize {
        usize::from(self.next()) % n
    }

    fn val(&mut self) -> u64 {
        let mut v = 0u64;
        for _ in 0..8 {
            v = (v << 8) | u64::from(self.next());
        }
        v
    }
}

/// The fixed declaration signature every generated program shares:
/// registers and array elements span narrow, word-size, and wide (>64)
/// widths so both the u64 fast path and the `Bits` limb path of the
/// compiled backend are exercised.
struct Sig {
    regs: Vec<(VarId, u16)>,
    arrs: Vec<(ArrId, u16, u64)>,
    ins: Vec<SigId>,
    outs: Vec<SigId>,
    /// Loop counters, reserved: never assigned by random statements.
    ctrs: Vec<VarId>,
}

const REG_WIDTHS: [u16; 7] = [1, 8, 13, 32, 64, 80, 128];

fn declare(pb: &mut kiwi_ir::ProgramBuilder, threads: usize) -> Sig {
    let regs = REG_WIDTHS
        .iter()
        .enumerate()
        .map(|(i, &w)| (pb.reg(&format!("r{i}"), w), w))
        .collect();
    let arrs = vec![
        (pb.array("mem8", 8, 16, ArrayBacking::LutRam), 8, 16),
        (pb.array("memw", 96, 4, ArrayBacking::BlockRam), 96, 4),
    ];
    let ins = vec![pb.sig_in("in_a", 32), pb.sig_in("in_b", 80)];
    let outs = vec![pb.sig_out("out_a", 24), pb.sig_out("out_b", 128)];
    let ctrs = (0..threads * 2)
        .map(|i| pb.reg(&format!("ctr{i}"), 8))
        .collect();
    Sig {
        regs,
        arrs,
        ins,
        outs,
        ctrs,
    }
}

/// Builds a random expression of bounded depth. Every produced tree is
/// width-valid by construction (slices go through an explicit resize;
/// concat operands are capped so no width exceeds 128 < `MAX_WIDTH`).
fn expr(t: &mut Tape, sig: &Sig, depth: u32) -> Expr {
    if depth == 0 {
        return match t.pick(4) {
            0 => {
                let w = 1 + t.pick(96) as u16;
                lit_bits(Bits::from_u64(t.val(), w))
            }
            1 | 2 => var(sig.regs[t.pick(sig.regs.len())].0),
            _ => dsl_sig(sig.ins[t.pick(sig.ins.len())]),
        };
    }
    match t.pick(15) {
        0 => add(expr(t, sig, depth - 1), expr(t, sig, depth - 1)),
        1 => sub(expr(t, sig, depth - 1), expr(t, sig, depth - 1)),
        2 => mul(expr(t, sig, depth - 1), expr(t, sig, depth - 1)),
        3 => band(expr(t, sig, depth - 1), expr(t, sig, depth - 1)),
        4 => bor(expr(t, sig, depth - 1), expr(t, sig, depth - 1)),
        5 => bxor(expr(t, sig, depth - 1), expr(t, sig, depth - 1)),
        // Shifts: both small literal and arbitrary-expression amounts,
        // pinning the documented shift width rule on random shapes.
        6 => shl(expr(t, sig, depth - 1), expr(t, sig, depth - 1)),
        7 => shr(expr(t, sig, depth - 1), expr(t, sig, depth - 1)),
        8 => {
            let l = expr(t, sig, depth - 1);
            let r = expr(t, sig, depth - 1);
            match t.pick(6) {
                0 => eq(l, r),
                1 => ne(l, r),
                2 => lt(l, r),
                3 => le(l, r),
                4 => gt(l, r),
                _ => ge(l, r),
            }
        }
        9 => mux(
            expr(t, sig, depth - 1),
            expr(t, sig, depth - 1),
            expr(t, sig, depth - 1),
        ),
        10 => match t.pick(3) {
            0 => not(expr(t, sig, depth - 1)),
            1 => neg(expr(t, sig, depth - 1)),
            _ => nonzero(expr(t, sig, depth - 1)),
        },
        11 => {
            let lo = t.pick(32) as u16;
            let hi = lo + t.pick(32 - usize::from(lo)) as u16;
            slice(resize(expr(t, sig, depth - 1), 32), hi, lo)
        }
        12 => {
            let wh = 1 + t.pick(64) as u16;
            let wl = 1 + t.pick(64) as u16;
            concat(
                resize(expr(t, sig, depth - 1), wh),
                resize(expr(t, sig, depth - 1), wl),
            )
        }
        13 => resize(expr(t, sig, depth - 1), 1 + t.pick(128) as u16),
        _ => {
            let (a, _, _) = sig.arrs[t.pick(sig.arrs.len())];
            arr_read(a, expr(t, sig, depth - 1))
        }
    }
}

/// A run of random statements. `depth` bounds statement nesting
/// (`if_else` bodies); expressions are depth ≤ 2 off the leaves.
///
/// Beyond the uniform random arms, three directed shapes stress the
/// cross-statement optimizer: repeated same-index array loads across
/// consecutive statements (redundant-load elimination), an aliasing
/// array write between two identical dynamic loads (the reuse *must*
/// be blocked), and back-to-back reads of one input signal (legal to
/// reuse between pauses, illegal across them — these land both inside
/// and outside the generated pause-carrying loops).
fn stmts(t: &mut Tape, sig: &Sig, depth: u32, count: usize) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        match t.pick(13) {
            0..=3 => out.push(assign(sig.regs[t.pick(sig.regs.len())].0, expr(t, sig, 2))),
            4 => {
                let (a, _, _) = sig.arrs[t.pick(sig.arrs.len())];
                out.push(arr_write(a, expr(t, sig, 1), expr(t, sig, 2)));
            }
            5 => out.push(sig_write(sig.outs[t.pick(sig.outs.len())], expr(t, sig, 2))),
            6 => out.push(label(["alpha", "beta", "gamma"][t.pick(3)])),
            7 => out.push(ext_point(t.next() as u32 % 5)),
            8 => {
                // Repeated const-index array loads in back-to-back
                // statements: the second load is redundant unless
                // something invalidates it.
                let (a, _, len) = sig.arrs[t.pick(sig.arrs.len())];
                let idx = t.pick(len as usize) as u64;
                let r1 = sig.regs[t.pick(sig.regs.len())].0;
                let r2 = sig.regs[t.pick(sig.regs.len())].0;
                out.push(assign(r1, add(arr_read(a, lit(idx, 8)), expr(t, sig, 1))));
                out.push(assign(r2, bxor(arr_read(a, lit(idx, 8)), expr(t, sig, 1))));
            }
            9 => {
                // Aliasing write between two identical dynamic loads:
                // the store may or may not hit the loaded index, so the
                // second load must re-read memory.
                let (a, _, _) = sig.arrs[t.pick(sig.arrs.len())];
                let idx_reg = sig.regs[t.pick(sig.regs.len())].0;
                let r1 = sig.regs[t.pick(sig.regs.len())].0;
                let r2 = sig.regs[t.pick(sig.regs.len())].0;
                out.push(assign(r1, arr_read(a, var(idx_reg))));
                out.push(arr_write(a, expr(t, sig, 1), expr(t, sig, 2)));
                out.push(assign(r2, arr_read(a, var(idx_reg))));
            }
            10 => {
                // Back-to-back input-signal reads across statements
                // (loop-invariant when no pause intervenes).
                let s = sig.ins[t.pick(sig.ins.len())];
                let r1 = sig.regs[t.pick(sig.regs.len())].0;
                let r2 = sig.regs[t.pick(sig.regs.len())].0;
                out.push(assign(r1, add(dsl_sig(s), expr(t, sig, 1))));
                out.push(assign(r2, band(dsl_sig(s), expr(t, sig, 1))));
            }
            _ if depth > 0 => {
                let cond = expr(t, sig, 2);
                let nt = 1 + t.pick(2);
                let then_ = stmts(t, sig, depth - 1, nt);
                let ne = 1 + t.pick(2);
                let else_ = stmts(t, sig, depth - 1, ne);
                out.push(if_else(cond, then_, else_));
            }
            _ => out.push(assign(sig.regs[t.pick(sig.regs.len())].0, expr(t, sig, 2))),
        }
    }
    out
}

/// A loop guaranteed to terminate: `ctr` is reserved for this loop (the
/// random statement pool never writes counters), counts up from its
/// init value of 0, and pauses each iteration.
fn bounded_loop(ctr: VarId, trips: u64, mut body: Vec<Stmt>) -> Stmt {
    body.push(assign(ctr, add(var(ctr), lit(1, 8))));
    body.push(pause());
    while_loop(lt(var(ctr), lit(trips, 8)), body)
}

/// One random halting thread body: prologue, a bounded loop whose body
/// may contain a nested bounded loop, epilogue, halt.
fn thread_body(t: &mut Tape, sig: &Sig, ctr0: VarId, ctr1: VarId) -> Vec<Stmt> {
    let outer_trips = 1 + t.pick(5) as u64;
    let inner_trips = 1 + t.pick(3) as u64;

    let n_loop = 2 + t.pick(5);
    let mut loop_body = stmts(t, sig, 2, n_loop);
    if t.pick(2) == 0 {
        let n_inner = 1 + t.pick(3);
        let inner_body = stmts(t, sig, 1, n_inner);
        loop_body.push(bounded_loop(ctr1, inner_trips, inner_body));
        // Re-arm the inner counter so it runs again next outer trip.
        loop_body.push(assign(ctr1, lit(0, 8)));
    }

    let n_pre = 1 + t.pick(3);
    let mut body = stmts(t, sig, 1, n_pre);
    body.push(bounded_loop(ctr0, outer_trips, loop_body));
    let n_post = 1 + t.pick(3);
    body.extend(stmts(t, sig, 1, n_post));
    body.push(halt());
    body
}

/// Full observer trace: every assignment (register, old, new), label,
/// and extension point, in execution order.
#[derive(Default, PartialEq, Debug)]
struct Trace {
    assigns: Vec<(u32, Bits, Bits)>,
    labels: Vec<String>,
    exts: Vec<u32>,
}

impl Observer for Trace {
    fn on_assign(&mut self, v: u32, old: &Bits, new: &Bits) {
        self.assigns.push((v, old.clone(), new.clone()));
    }
    fn on_label(&mut self, n: &str) {
        self.labels.push(n.into());
    }
    fn on_ext_point(&mut self, id: u32, _s: &mut MachineState) {
        self.exts.push(id);
    }
}

/// Asserts two machine states are identical in every field a backend
/// can influence.
fn assert_state_eq(label: &str, a: &MachineState, b: &MachineState) {
    assert_eq!(a.vars, b.vars, "{label}: registers diverged");
    assert_eq!(a.arrays, b.arrays, "{label}: arrays diverged");
    assert_eq!(a.sigs_out, b.sigs_out, "{label}: output signals diverged");
    assert_eq!(a.arr_high, b.arr_high, "{label}: arr_high marks diverged");
}

/// Drives every input signal with a value derived from the cycle number
/// (splitmix64), so the program's input stream is deterministic but
/// dense in both narrow and wide bit patterns.
struct Pump;

impl Env for Pump {
    fn tick(&mut self, cycle: u64, prog: &Program, st: &mut MachineState) {
        for (i, name) in ["in_a", "in_b"].iter().enumerate() {
            let mut z = cycle.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            st.drive(prog, name, Bits::from_u64(z ^ (z >> 31), 80));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tree-walk vs compiled, strongest form: two random threads over
    /// shared state, env-driven input signals, full state snapshot
    /// compared after **every** cycle, full observer traces, and the
    /// cycle/op accounting the engine's cost model is built on.
    #[test]
    fn random_programs_treewalk_vs_compiled_cycle_lockstep(
        seed in proptest::collection::vec(any::<u8>(), 16..96)
    ) {
        let mut t = Tape::new(&seed);
        let mut pb = kiwi_ir::ProgramBuilder::new("rand");
        let sig = declare(&mut pb, 2);
        let b0 = thread_body(&mut t, &sig, sig.ctrs[0], sig.ctrs[1]);
        let b1 = thread_body(&mut t, &sig, sig.ctrs[2], sig.ctrs[3]);
        pb.thread("t0", b0);
        pb.thread("t1", b1);
        let prog = pb.build().expect("generated program must be valid");

        let mut tw = Machine::new(flatten(&prog).unwrap());
        let mut cm = CompiledMachine::from_program(&prog).unwrap();
        let (mut ta, mut tb) = (Trace::default(), Trace::default());

        for cycle in 0..300u64 {
            if tw.halted() {
                break;
            }
            tw.step_cycle(&mut Pump, &mut ta).unwrap();
            cm.step_cycle(&mut Pump, &mut tb).unwrap();
            prop_assert_eq!(tw.halted(), cm.halted(), "halt state at cycle {}", cycle);
            assert_state_eq(&format!("cycle {cycle}"), tw.state(), cm.state());
        }
        prop_assert_eq!(tw.cycle(), cm.cycle(), "cycle counts diverged");
        prop_assert_eq!(tw.ops_executed(), cm.ops_executed(), "op counts diverged");
        prop_assert_eq!(ta, tb, "observer traces diverged");
    }

    /// All three backends on the same random halting program: the
    /// tree-walker, the compiled backend, and the RTL executor under
    /// both a generous and a deliberately tight clock budget (which
    /// forces extra FSM state splits) must land on the same final
    /// machine state and emit the same observer trace.
    #[test]
    fn random_programs_all_three_backends_agree(
        seed in proptest::collection::vec(any::<u8>(), 16..96)
    ) {
        let mut t = Tape::new(&seed);
        let mut pb = kiwi_ir::ProgramBuilder::new("rand3");
        let sig = declare(&mut pb, 1);
        let body = thread_body(&mut t, &sig, sig.ctrs[0], sig.ctrs[1]);
        pb.thread("main", body);
        let prog = pb.build().expect("generated program must be valid");

        let mut tw = Machine::new(flatten(&prog).unwrap());
        let mut cm = CompiledMachine::from_program(&prog).unwrap();
        let mut traces = vec![Trace::default(), Trace::default()];
        tw.run_cycles(10_000, &mut NullEnv, &mut traces[0]).unwrap();
        cm.run_cycles(10_000, &mut NullEnv, &mut traces[1]).unwrap();
        prop_assert!(tw.halted() && cm.halted(), "software backends must halt");
        prop_assert_eq!(tw.cycle(), cm.cycle());

        let models = [
            ("fpga-loose", CostModel::default()),
            ("fpga-tight", CostModel { period_units: 10, clock_hz: 200_000_000 }),
        ];
        let mut rtls = Vec::new();
        for (label, model) in models {
            let fsm = kiwi::compile_with(&prog, model).unwrap();
            let mut rtl = emu::rtl::RtlMachine::new(fsm);
            let mut trace = Trace::default();
            rtl.run_cycles(500_000, &mut NullEnv, &mut trace).unwrap();
            prop_assert!(rtl.halted(), "{} must halt", label);
            traces.push(trace);
            rtls.push((label, rtl));
        }

        assert_state_eq("treewalk vs compiled", tw.state(), cm.state());
        for (label, rtl) in &rtls {
            assert_state_eq(&format!("treewalk vs {label}"), tw.state(), rtl.state());
        }
        // The CPU backends must agree on the *entire* trace, labels
        // included. The FSM target erases `Label` markers that land on
        // state boundaries (they are zero-delay debug symbols, resolved
        // through like jumps — see `kiwi::fsm::FsmThread::resolve`), so
        // against the RTL only the semantic events — assignments and
        // extension points — are required to match.
        prop_assert_eq!(&traces[0], &traces[1], "CPU backend traces diverged");
        for (i, trace) in traces.iter().enumerate().skip(2) {
            prop_assert_eq!(&traces[0].assigns, &trace.assigns, "rtl trace {} assigns", i);
            prop_assert_eq!(&traces[0].exts, &trace.exts, "rtl trace {} ext points", i);
        }
    }
}

// ---------------------------------------------------------------------
// Soak-level: whole traffic mixes through Engines on both CPU backends.
// ---------------------------------------------------------------------

/// The five soak services paired with their generators (same pairings
/// as the soak harness and `differential_props::traffic_props`).
fn soak_pairings(seed: u64) -> Vec<(&'static str, emu::stdlib::Service, Box<dyn TrafficGen>)> {
    vec![
        (
            "tcp-ping",
            s::tcp_ping(),
            Box::new(TcpConversations::new(seed, 6, &[0, 1, 2, 3])),
        ),
        (
            "memcached",
            s::memcached(),
            Box::new(MemcachedZipf::new(seed, 16, 1.0, 0.8)),
        ),
        (
            "dns",
            s::dns_server(vec![
                ("example.com".to_string(), "93.184.216.34".parse().unwrap()),
                ("a.b".to_string(), "1.2.3.4".parse().unwrap()),
            ]),
            Box::new(DnsWeighted::new(
                seed,
                &[("example.com", 2), ("a.b", 1), ("x.y", 1)],
            )),
        ),
        (
            "nat",
            s::nat("203.0.113.1".parse().unwrap()),
            Box::new(
                Mix::new(seed)
                    .add(4, TcpConversations::new(seed ^ 1, 6, &[1, 2]))
                    .add(1, Adversarial::new(seed ^ 2, &[1, 2, 3])),
            ),
        ),
        (
            "switch",
            s::switch_ip_cam(),
            Box::new(
                Mix::new(seed)
                    .add(3, Background::new(seed ^ 1, &[0, 1, 2, 3]))
                    .add(1, Adversarial::new(seed ^ 2, &[0, 1, 2, 3])),
            ),
        ),
    ]
}

/// The churn pairings: stateful services whose small, TTL'd tables see
/// entries inserted, aged out, and re-learned mid-stream. The `bool`
/// requests [`NatSteering`] dispatch (NAT's port-allocation
/// correctness depends on its per-shard ephemeral partition).
fn churn_pairings(
    seed: u64,
) -> Vec<(
    &'static str,
    emu::stdlib::Service,
    Box<dyn TrafficGen>,
    bool,
)> {
    vec![
        (
            "nat",
            s::nat("203.0.113.1".parse().unwrap()),
            Box::new(FlowChurn::new(seed, 24, 200, &[1, 2, 3])),
            true,
        ),
        (
            "switch",
            s::switch_ip_cam(),
            Box::new(MacChurn::new(seed, 16, 250)),
            false,
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Insert/expire/re-insert churn through small TTL'd tables must
    /// stay byte-identical across the CPU backends at any shard count:
    /// every per-frame outcome (including translations minted after an
    /// expired mapping's port was reclaimed) and the per-shard cycle
    /// accounting.
    #[test]
    fn churn_batch_reports_agree_across_cpu_backends(
        seed in any::<u64>(),
        shards in 1usize..5
    ) {
        for (label, svc, mut gen, steer) in churn_pairings(seed) {
            let frames: Vec<Frame> = (0..240).map(|_| gen.next_frame()).collect();
            let build = |backend| {
                let mut b = svc
                    .engine(Target::Cpu)
                    .backend(backend)
                    .shards(shards)
                    .table_entries(64)
                    .ttl_frames(48);
                if steer {
                    b = b.dispatch(NatSteering::default());
                }
                b.build().unwrap()
            };
            let a = build(Backend::Compiled).process_batch(&frames);
            let b = build(Backend::TreeWalk).process_batch(&frames);
            prop_assert_eq!(
                &a.shard_cycles, &b.shard_cycles,
                "{}: shard cycle accounting diverged under churn at {} shards", label, shards
            );
            for (i, (x, y)) in a.outputs.iter().zip(&b.outputs).enumerate() {
                prop_assert_eq!(
                    x, y,
                    "{}: churn frame {} diverged across CPU backends at {} shards",
                    label, i, shards
                );
            }
        }
    }

    /// Parallel execution must be telemetry-invisible under churn: the
    /// full [`EngineSnapshot`] — per-shard counters, cycle histograms,
    /// and per-CAM occupancy/eviction/expiry tallies — equals the
    /// sequential run's exactly, and the stream genuinely ages entries
    /// out (total expiries > 0), so the equality covers the TTL path.
    #[test]
    fn churn_telemetry_snapshots_agree_sequential_vs_parallel(seed in any::<u64>()) {
        for (label, svc, mut gen, steer) in churn_pairings(seed) {
            let frames: Vec<Frame> = (0..600).map(|_| gen.next_frame()).collect();
            let mut snaps = Vec::new();
            for parallel in [false, true] {
                let mut b = svc
                    .engine(Target::Cpu)
                    .backend(Backend::Compiled)
                    .shards(4)
                    .parallel(parallel)
                    .telemetry(true)
                    .table_entries(64)
                    .ttl_frames(48);
                if steer {
                    b = b.dispatch(NatSteering::default());
                }
                let mut engine = b.build().unwrap();
                engine.process_batch(&frames);
                snaps.push(engine.telemetry().expect("telemetry enabled"));
            }
            prop_assert_eq!(
                &snaps[0], &snaps[1],
                "{}: sequential and parallel telemetry snapshots diverged", label
            );
            let total = snaps[0].total();
            let expiries: u64 = total.cams.iter().map(|c| c.expiries).sum();
            prop_assert!(expiries > 0, "{}: churn stream aged nothing out", label);
        }
    }

    /// Lockstep across batch sizes: chunking one frame stream into
    /// batches of 1, 3, and 16 through the batched fast path must
    /// reproduce the scalar compiled run ([`EngineBuilder::batching`]
    /// disabled) frame for frame — outputs, cycle counts — and land on
    /// the identical [`EngineSnapshot`], for all five soak services.
    /// The tree-walker anchors the reference run to the spec semantics.
    #[test]
    fn batched_lockstep_at_batch_sizes_1_3_16(seed in any::<u64>()) {
        for (label, svc, mut gen) in soak_pairings(seed) {
            let frames: Vec<Frame> = (0..96).map(|_| gen.next_frame()).collect();
            let mut scalar = svc
                .engine(Target::Cpu)
                .backend(Backend::Compiled)
                .batching(false)
                .build()
                .unwrap();
            let mut reference = svc
                .engine(Target::Cpu)
                .backend(Backend::TreeWalk)
                .build()
                .unwrap();
            let want = scalar.process_batch(&frames);
            let tw = reference.process_batch(&frames);
            for (i, (x, y)) in want.outputs.iter().zip(&tw.outputs).enumerate() {
                prop_assert_eq!(
                    x, y,
                    "{}: scalar compiled vs treewalk diverged on frame {}", label, i
                );
            }
            let want_snap = scalar.telemetry().expect("telemetry on by default");
            for chunk in [1usize, 3, 16] {
                let mut batched = svc
                    .engine(Target::Cpu)
                    .backend(Backend::Compiled)
                    .batching(true)
                    .build()
                    .unwrap();
                let mut outputs = Vec::with_capacity(frames.len());
                for slice in frames.chunks(chunk) {
                    outputs.extend(batched.process_batch(slice).outputs);
                }
                for (i, (x, y)) in outputs.iter().zip(&want.outputs).enumerate() {
                    prop_assert_eq!(
                        x, y,
                        "{}: batch size {} diverged from scalar on frame {}", label, chunk, i
                    );
                }
                prop_assert_eq!(
                    batched.telemetry().expect("telemetry on by default"),
                    want_snap.clone(),
                    "{}: batch size {} telemetry snapshot diverged", label, chunk
                );
            }
        }
    }

    /// Compiled-vs-tree-walk `BatchReport` agreement for all five soak
    /// services under their `emu-traffic` mixes: every per-frame outcome
    /// (success bytes and error variants alike) and the per-shard cycle
    /// accounting must be identical.
    #[test]
    fn batch_reports_agree_across_cpu_backends(
        seed in any::<u64>(),
        shards in 1usize..5
    ) {
        for (label, svc, mut gen) in soak_pairings(seed) {
            let frames: Vec<Frame> = (0..120).map(|_| gen.next_frame()).collect();
            let mut fast = svc
                .engine(Target::Cpu)
                .backend(Backend::Compiled)
                .shards(shards)
                .build()
                .unwrap();
            let mut reference = svc
                .engine(Target::Cpu)
                .backend(Backend::TreeWalk)
                .shards(shards)
                .build()
                .unwrap();
            let a = fast.process_batch(&frames);
            let b = reference.process_batch(&frames);
            prop_assert_eq!(
                &a.shard_cycles, &b.shard_cycles,
                "{}: shard cycle accounting diverged at {} shards", label, shards
            );
            for (i, (x, y)) in a.outputs.iter().zip(&b.outputs).enumerate() {
                prop_assert_eq!(
                    x, y,
                    "{}: frame {} diverged across CPU backends at {} shards",
                    label, i, shards
                );
            }
        }
    }
}

/// The builder-side mirror of `EMU_CPU_PASSES`: pinning the compiled
/// backend's pipeline to empty (no optimization) or to the
/// statement-local list must be behaviour-invisible — identical
/// outcomes, cycle accounting, and telemetry against the default
/// (cross-statement) pipeline.
#[test]
fn engine_passes_knob_is_behavior_invisible() {
    for (label, svc, mut gen) in soak_pairings(0xE11A) {
        let frames: Vec<Frame> = (0..80).map(|_| gen.next_frame()).collect();
        let mut reports = Vec::new();
        let mut snaps = Vec::new();
        let pipelines: [&[kiwi_ir::Pass]; 3] = [
            kiwi_ir::default_pipeline(),
            kiwi_ir::statement_pipeline(),
            &[],
        ];
        for passes in pipelines {
            let mut engine = svc
                .engine(Target::Cpu)
                .backend(Backend::Compiled)
                .passes(passes)
                .build()
                .unwrap();
            reports.push(engine.process_batch(&frames));
            snaps.push(engine.telemetry().expect("telemetry on by default"));
        }
        for k in 1..reports.len() {
            assert_eq!(
                reports[0].shard_cycles, reports[k].shard_cycles,
                "{label}: pipeline {k} changed cycle accounting"
            );
            for (i, (x, y)) in reports[0]
                .outputs
                .iter()
                .zip(&reports[k].outputs)
                .enumerate()
            {
                assert_eq!(x, y, "{label}: pipeline {k} diverged on frame {i}");
            }
            assert_eq!(
                snaps[0], snaps[k],
                "{label}: pipeline {k} changed telemetry"
            );
        }
    }
}
