//! Functional differential tests: the host-native implementations
//! (`hoststack::services`) and the Emu services compiled to the FPGA
//! target must produce byte-identical replies — the paper's claim that
//! the *same service semantics* move between host and hardware.

use emu::host::{HostDns, HostIcmpEcho, HostMemcached, HostService};
use emu::prelude::*;
use emu::services as s;

#[test]
fn icmp_echo_matches_host_implementation() {
    let svc = s::icmp::icmp_echo();
    let mut hw = svc.engine(Target::Fpga).build().unwrap();
    let mut host = HostIcmpEcho;
    for (i, len) in [8usize, 56, 200, 1000].iter().enumerate() {
        let req = s::icmp::echo_request_frame(*len, i as u16);
        let a = hw.process(&req).unwrap();
        let b = host.process(&req);
        assert_eq!(a.tx.len(), b.len(), "len {len}");
        assert_eq!(a.tx[0].frame.bytes(), b[0].bytes(), "len {len}");
    }
    // Both drop a corrupted request.
    let mut bad = s::icmp::echo_request_frame(56, 9);
    bad.bytes_mut()[50] ^= 0xff;
    assert!(hw.process(&bad).unwrap().tx.is_empty());
    assert!(host.process(&bad).is_empty());
}

#[test]
fn dns_matches_host_implementation() {
    let zone: Vec<(String, Ipv4)> = vec![
        ("example.com".into(), "93.184.216.34".parse().unwrap()),
        ("a.b".into(), "1.2.3.4".parse().unwrap()),
    ];
    let svc = s::dns::dns_server(zone.clone());
    let mut hw = svc.engine(Target::Fpga).build().unwrap();
    let mut host = HostDns::new(zone);
    for (i, name) in ["example.com", "a.b", "missing.org"].iter().enumerate() {
        let q = s::dns::query_frame(name, i as u16);
        let a = hw.process(&q).unwrap();
        let b = host.process(&q);
        assert_eq!(a.tx.len(), b.len(), "{name}");
        assert_eq!(a.tx[0].frame.bytes(), b[0].bytes(), "{name}");
    }
}

#[test]
fn memcached_matches_host_implementation() {
    let svc = s::memcached::memcached();
    let mut hw = svc.engine(Target::Fpga).build().unwrap();
    let mut host = HostMemcached::default();
    let script = [
        "set alpha 0 0 8\r\nAAAABBBB\r\n",
        "get alpha\r\n",
        "get beta\r\n",
        "set beta 0 0 8\r\nCCCCDDDD\r\n",
        "get beta\r\n",
        "delete alpha\r\n",
        "get alpha\r\n",
        "delete alpha\r\n",
    ];
    for (i, body) in script.iter().enumerate() {
        let req = s::memcached::request_frame(body, i as u16);
        let a = hw.process(&req).unwrap();
        let b = host.process(&req);
        assert_eq!(a.tx.len(), b.len(), "step {i}: {body:?}");
        if !b.is_empty() {
            assert_eq!(a.tx[0].frame.bytes(), b[0].bytes(), "step {i}: {body:?}");
        }
    }
}
