//! Failure injection across the stack: malformed frames, truncated
//! packets, table exhaustion, queue overflow, and bad direction packets
//! must degrade gracefully — dropped or rejected, never wedging a core.

use emu::debug::{extend_program, ControllerConfig, DirectionPacket, Opcode};
use emu::prelude::*;
use emu::services as s;
use emu::stdlib::Service;

#[test]
fn truncated_and_garbage_frames_are_survivable() {
    for svc in [
        s::icmp::icmp_echo(),
        s::tcp_ping::tcp_ping(),
        s::dns::dns_server(vec![("a.b".into(), "1.2.3.4".parse().unwrap())]),
        s::memcached::memcached(),
        s::nat::nat("203.0.113.1".parse().unwrap()),
    ] {
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        // A runt frame (padded to 60 by the Frame type, all zeroes).
        inst.process(&Frame::new(vec![0; 10])).unwrap();
        // Random-ish garbage.
        let junk: Vec<u8> = (0..90).map(|i| (i * 37 % 251) as u8).collect();
        inst.process(&Frame::new(junk)).unwrap();
        // An IPv4 header claiming a huge total length.
        let mut evil = s::icmp::echo_request_frame(56, 1);
        evil.bytes_mut()[16] = 0xff;
        evil.bytes_mut()[17] = 0xff;
        let out = inst.process(&evil);
        // Either cleanly dropped or cleanly errored — never a wedged core.
        if let Ok(o) = out {
            let _ = o;
        }
        // The service must still answer well-formed traffic afterwards.
        let probe = s::icmp::echo_request_frame(8, 2);
        inst.process(&probe).unwrap();
    }
}

#[test]
fn memcached_handles_malformed_commands() {
    let svc = s::memcached::memcached();
    let mut inst = svc.engine(Target::Fpga).build().unwrap();
    for body in [
        "gibberish\r\n",
        "get \r\n",               // empty key
        "set x 0 0 8\r\n",        // missing data block
        "get nokeyhereatall\r\n", // oversized key
        "\r\n",
    ] {
        // Must not wedge; replies optional.
        inst.process(&s::memcached::request_frame(body, 1)).unwrap();
    }
    // Still functional.
    inst.process(&s::memcached::request_frame(
        "set ok 0 0 8\r\nVVVVVVVV\r\n",
        2,
    ))
    .unwrap();
    let out = inst
        .process(&s::memcached::request_frame("get ok\r\n", 3))
        .unwrap();
    assert_eq!(
        s::memcached::reply_text(&out.tx[0].frame),
        b"VALUE ok 0 8\r\nVVVVVVVV\r\nEND\r\n"
    );
}

#[test]
fn mac_table_exhaustion_keeps_forwarding() {
    // More sources than table entries: the switch must keep forwarding
    // (with evictions), never crash or stall.
    let svc = s::switch::switch_behavioural(4);
    let mut inst = svc.engine(Target::Fpga).build().unwrap();
    for i in 0..64u64 {
        let mut f = Frame::ethernet(
            MacAddr::from_u64(0xE000 + (i % 7)),
            MacAddr::from_u64(0x1000 + i),
            0x0800,
            &[0; 46],
        );
        f.in_port = (i % 4) as u8;
        let out = inst.process(&f).unwrap();
        assert!(!out.tx.is_empty(), "frame {i} must still forward");
    }
}

#[test]
fn output_queue_overflow_drops_cleanly() {
    use emu::platform::{PipelineSim, RefSwitchCore};
    let mut sim = PipelineSim::new_native(Box::new(RefSwitchCore::new()));
    sim.out_queue_frames = 4;
    // All traffic converges on one egress port at 4x its line rate.
    sim.inject(&learned(0xB, 0xA, 1), 0.0).unwrap(); // learn A@1... (src 0xB)
    let gap = 4.2; // far beyond line rate
    let mut t = 1000.0;
    for i in 0..2000u64 {
        let mut f = Frame::ethernet(
            MacAddr::from_u64(0xB),
            MacAddr::from_u64(0xA),
            0x0800,
            &[0; 46],
        );
        f.in_port = (i % 3) as u8;
        if f.in_port == 1 {
            f.in_port = 3;
        }
        sim.inject(&f, t).unwrap();
        t += gap;
    }
    assert!(sim.queue_drops > 0, "oversubscription must drop");
    // And completed frames still have sane latencies.
    let s = sim.summary().unwrap();
    assert!(s.min > 0.0);
}

fn learned(src: u64, dst: u64, port: u8) -> Frame {
    let mut f = Frame::ethernet(
        MacAddr::from_u64(dst),
        MacAddr::from_u64(src),
        0x0800,
        &[0; 46],
    );
    f.in_port = port;
    f
}

/// A mirror service with a planted fault: any frame whose first payload
/// byte (offset 14) is `0xEE` sends the core into an idle loop that never
/// pulses `rx_done` — the "wedged core" failure the driver's cycle budget
/// converts into an error.
fn trappable_mirror() -> Service {
    use emu::ir::dsl::*;
    let (mut pb, dp) = emu::stdlib::service_builder("trappable", 256);
    let mut ok_path = vec![dp.set_output_port(dp.input_port())];
    ok_path.extend(dp.transmit(dp.rx_len()));
    ok_path.extend(dp.done());
    let body = vec![
        dp.rx_wait(),
        if_else(
            eq(dp.byte(14), lit(0xEE, 8)),
            vec![forever(vec![pause()])], // wedge: rx_done never comes
            ok_path,
        ),
    ];
    pb.thread("main", vec![forever(body)]);
    Service::new(pb.build().unwrap())
}

/// Builds a frame for `client` (distinct MACs ⇒ distinct flows); a
/// poison frame carries the 0xEE trigger byte that wedges the core.
fn frame_for(client: u64, poison: bool) -> Frame {
    let payload = if poison { [0xEEu8; 46] } else { [0x11u8; 46] };
    Frame::ethernet(
        MacAddr::from_u64(0xB),
        MacAddr::from_u64(client),
        0x0900,
        &payload,
    )
}

/// One representative client per shard of a 4-shard RSS engine.
fn clients_per_shard(engine: &Engine) -> Vec<u64> {
    let mut per_shard: Vec<Option<u64>> = vec![None; engine.num_shards()];
    for client in 0..256u64 {
        let k = engine.shard_of(&frame_for(client, false));
        per_shard[k].get_or_insert(client);
    }
    per_shard.into_iter().map(|c| c.unwrap()).collect()
}

/// The trapped-shard isolation scenario, shared by the sequential and
/// parallel modes: poisoning semantics must be identical in both.
fn assert_trapped_shard_isolated(mut engine: Engine) {
    engine.set_max_cycles_per_frame(500); // trip the wedge quickly
    let clients = clients_per_shard(&engine);
    let victim = engine.shard_of(&frame_for(clients[2], false));

    // A mixed batch: healthy traffic for every shard plus one poison
    // frame for the victim shard.
    let mut frames: Vec<Frame> = clients.iter().map(|&c| frame_for(c, false)).collect();
    frames.push(frame_for(clients[2], true));
    frames.extend(clients.iter().map(|&c| frame_for(c, false)));

    let report = engine.process_batch(&frames);

    // The trap is attributed and retained; only that shard is lost.
    assert!(engine.shard_error(victim).unwrap().contains("exceeded"));
    assert_eq!(engine.healthy_shards(), 3);
    let poison_at = clients.len(); // index of the poison frame
    for (i, (f, out)) in frames.iter().zip(&report.outputs).enumerate() {
        if engine.shard_of(f) == victim && i >= poison_at {
            // The poison frame reports the trap, the victim's later
            // frames report poisoning — both naming the shard...
            let err = out.as_ref().unwrap_err();
            match err {
                EngineError::Trap { shard, .. } | EngineError::Poisoned { shard, .. } => {
                    assert_eq!(*shard, victim, "frame {i}: {err}");
                }
                other => panic!("frame {i}: unexpected error {other}"),
            }
            assert!(
                err.to_string().contains(&format!("shard {victim}")),
                "{err}"
            );
        } else {
            // ...while frames before the trap and every sibling-shard
            // frame still mirror cleanly.
            let out = out.as_ref().unwrap();
            assert_eq!(out.tx.len(), 1, "sibling shard corrupted");
            assert_eq!(out.tx[0].frame.bytes(), f.bytes());
        }
    }

    // Later single-frame traffic: poisoned shard reports, siblings serve.
    let err = engine.process(&frame_for(clients[2], false)).unwrap_err();
    assert!(matches!(err, EngineError::Poisoned { shard, .. } if shard == victim));
    let ok = engine.process(&frame_for(clients[0], false)).unwrap();
    assert_eq!(ok.tx.len(), 1);
}

#[test]
fn trapped_shard_is_isolated_from_siblings() {
    let svc = trappable_mirror();
    assert_trapped_shard_isolated(svc.engine(Target::Fpga).shards(4).build().unwrap());
}

#[test]
fn trapped_shard_is_isolated_under_parallel_execution() {
    // The same wedge on real threads: the victim shard is poisoned and
    // isolated exactly as in sequential mode — same per-frame errors,
    // same surviving siblings.
    let svc = trappable_mirror();
    assert_trapped_shard_isolated(
        svc.engine(Target::Fpga)
            .shards(4)
            .parallel(true)
            .build()
            .unwrap(),
    );
}

#[test]
fn oversized_frames_are_rejected_without_poisoning() {
    // An oversized frame is an input-validation failure: the shard never
    // sees it, so it must NOT be poisoned and must keep serving.
    let svc = trappable_mirror(); // 256 B frame buffer
    let mut engine = svc.engine(Target::Fpga).shards(2).build().unwrap();
    let small = Frame::new(vec![0x11; 64]);
    let big = Frame::new(vec![0x11; 1000]);

    let err = engine.process(&big).unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Oversize {
                len: 1000,
                cap: 256,
                ..
            }
        ),
        "{err}"
    );
    assert_eq!(engine.healthy_shards(), 2, "validation must not poison");

    // Batch mixing valid and oversized frames: per-frame results.
    let report = engine.process_batch(&[small.clone(), big, small.clone()]);
    assert!(report.outputs[0].is_ok());
    assert!(matches!(
        report.outputs[1].as_ref().unwrap_err(),
        EngineError::Oversize { .. }
    ));
    assert!(report.outputs[2].is_ok());
    assert_eq!(engine.healthy_shards(), 2);
    assert_eq!(engine.process(&small).unwrap().tx.len(), 1);
}

#[test]
fn malformed_direction_packets_rejected() {
    let base = s::memcached::memcached();
    let cfg = ControllerConfig::read_only(&["n_get"]);
    let prog = extend_program(&base.program, &cfg).unwrap();
    let svc = Service::with_sized_env(prog, move |cfg| (base.make_env)(cfg));
    let mut inst = svc.engine(Target::Fpga).build().unwrap();

    // Unknown opcode byte: the controller answers BAD_OP (the opcode
    // decode falls through every compiled feature).
    let mut f = DirectionPacket::request(Opcode::ReadVar, 0, 0)
        .encode(MacAddr::from_u64(1), MacAddr::from_u64(2));
    f.bytes_mut()[14] = 0x55;
    let out = inst.process(&f).unwrap();
    assert_eq!(out.tx.len(), 1);
    assert_eq!(out.tx[0].frame.bytes()[24], 2, "BAD_OP status expected");

    // Bad variable index.
    let f = DirectionPacket::request(Opcode::ReadVar, 200, 0)
        .encode(MacAddr::from_u64(1), MacAddr::from_u64(2));
    let out = inst.process(&f).unwrap();
    assert_eq!(out.tx[0].frame.bytes()[24], 1, "BAD_VAR status expected");

    // Normal service traffic still works afterwards.
    let out = inst
        .process(&s::memcached::request_frame("get zz\r\n", 1))
        .unwrap();
    assert_eq!(s::memcached::reply_text(&out.tx[0].frame), b"END\r\n");
}
