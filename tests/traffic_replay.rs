//! Golden-fixture replay: the committed traffic recordings under
//! `tests/fixtures/` must replay **byte-exact** on every execution
//! target. A generator or service refactor that changes any observable
//! byte shows up here as a failure — re-record deliberately with
//! `cargo run -p emu-traffic --bin record_fixtures` and review the
//! fixture diff; semantics never change silently.

use emu::prelude::*;
use emu_traffic::scenarios::fixture_scenarios;
use emu_traffic::Trace;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.trace"))
}

#[test]
fn every_scenario_has_a_committed_fixture() {
    for s in fixture_scenarios() {
        assert!(
            fixture_path(s.name).exists(),
            "{} missing — run `cargo run -p emu-traffic --bin record_fixtures`",
            s.name
        );
    }
}

#[test]
fn fixture_inputs_match_the_generators() {
    // The recording's input side must equal what the generators produce
    // today: if a generator drifts, the fixture (and this assertion)
    // says so before any output comparison confuses the matter.
    for s in fixture_scenarios() {
        let trace = Trace::load(&fixture_path(s.name)).expect("parse fixture");
        let fresh = (s.inputs)();
        assert_eq!(
            trace.inputs().len(),
            fresh.len(),
            "{}: input count drifted",
            s.name
        );
        for (i, (a, b)) in trace.inputs().iter().zip(&fresh).enumerate() {
            assert_eq!(a.bytes(), b.bytes(), "{}: input {i} bytes drifted", s.name);
            assert_eq!(a.in_port, b.in_port, "{}: input {i} port drifted", s.name);
        }
    }
}

#[test]
fn fixtures_replay_byte_exact_on_every_target() {
    for s in fixture_scenarios() {
        let trace = Trace::load(&fixture_path(s.name)).expect("parse fixture");
        for target in [Target::Cpu, Target::Fpga] {
            let svc = (s.service)();
            let mut engine = svc.engine(target).build().unwrap();
            trace
                .replay(&mut engine)
                .unwrap_or_else(|e| panic!("{} on {target:?}: {e}", s.name));
        }
    }
}

#[test]
fn fixtures_contain_the_interesting_shapes() {
    // Guard the fixtures' coverage so a re-record can't quietly shrink
    // them into triviality: NAT must exercise both directions,
    // memcached must produce replies, and the malformed mix must
    // include frames the engine processes *and* frames it drops.
    let nat = Trace::load(&fixture_path("nat_bidirectional")).unwrap();
    assert!(nat.entries.iter().any(|e| e.input.in_port != 0));
    assert!(nat.entries.iter().any(|e| e.input.in_port == 0));
    assert!(nat.entries.iter().all(|e| !e.outputs.is_empty()));

    let mc = Trace::load(&fixture_path("memcached_zipf")).unwrap();
    assert!(mc.entries.iter().all(|e| e.outputs.len() == 1));

    let mixed = Trace::load(&fixture_path("malformed_mix")).unwrap();
    assert!(mixed.entries.iter().any(|e| !e.outputs.is_empty()));
    assert!(
        mixed.entries.iter().any(|e| e.rejected),
        "malformed mix must include an oversize rejection"
    );
}
